//! Pattern compilation service: content-addressed cache + singleflight.
//!
//! The same discipline as `msc_engine::Engine`, reusing its building
//! blocks directly: patterns are keyed by
//! [`msc_engine::content_key`]`("regex", pattern)`, compiled at most once
//! per key ([`msc_engine::Singleflight`] coalesces concurrent identical
//! requests), and held in a small tick-LRU. [`msc_engine::Provenance`]
//! reports how each request was served (`Disk` is never returned — the
//! regex cache has no disk layer).

use crate::{Regex, RegexError};
use msc_engine::{content_key, CacheKey, Flight, Provenance, Singleflight};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default LRU capacity in compiled patterns.
pub const DEFAULT_PATTERN_CAPACITY: usize = 64;

struct Lru {
    map: HashMap<CacheKey, (Arc<Regex>, u64)>,
    tick: u64,
}

/// The compiled-pattern cache.
pub struct RegexEngine {
    capacity: usize,
    max_meta_states: usize,
    lru: Mutex<Lru>,
    flights: Singleflight<CacheKey, Arc<Regex>>,
    compiled: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
}

impl Default for RegexEngine {
    fn default() -> Self {
        Self::new(DEFAULT_PATTERN_CAPACITY)
    }
}

impl RegexEngine {
    /// Engine with room for `capacity` compiled patterns (0 disables
    /// caching — every request compiles, though concurrent identical
    /// requests still coalesce) and the default
    /// [`crate::MAX_META_STATES`] complexity cap.
    pub fn new(capacity: usize) -> Self {
        Self::with_limits(capacity, crate::MAX_META_STATES)
    }

    /// Engine with an explicit meta-state complexity cap: patterns whose
    /// subset construction exceeds `max_meta_states` states are rejected
    /// as too complex (0 acts as 1).
    pub fn with_limits(capacity: usize, max_meta_states: usize) -> Self {
        RegexEngine {
            capacity,
            max_meta_states,
            lru: Mutex::new(Lru {
                map: HashMap::new(),
                tick: 0,
            }),
            flights: Singleflight::new(),
            compiled: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Patterns compiled from scratch.
    pub fn compiled(&self) -> u64 {
        self.compiled.load(Ordering::Relaxed)
    }

    /// Requests served from the pattern cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that coalesced onto a concurrent identical compile.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    fn probe(&self, key: CacheKey) -> Option<Arc<Regex>> {
        let mut lru = self.lru.lock().unwrap_or_else(|p| p.into_inner());
        lru.tick += 1;
        let tick = lru.tick;
        let (regex, stamp) = lru.map.get_mut(&key)?;
        *stamp = tick;
        Some(Arc::clone(regex))
    }

    fn insert(&self, key: CacheKey, regex: &Arc<Regex>) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.lru.lock().unwrap_or_else(|p| p.into_inner());
        lru.tick += 1;
        let tick = lru.tick;
        if lru.map.len() >= self.capacity && !lru.map.contains_key(&key) {
            if let Some(victim) = lru
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                lru.map.remove(&victim);
            }
        }
        lru.map.insert(key, (Arc::clone(regex), tick));
    }

    /// Fetch or compile the pattern. Concurrent identical misses compile
    /// once; followers share the leader's outcome.
    pub fn get(&self, pattern: &str) -> Result<(Arc<Regex>, Provenance), RegexError> {
        let key = content_key("regex", &[pattern.as_bytes()]);
        let leader = match self.flights.begin(key, || self.probe(key)) {
            Flight::Hit(regex) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                msc_obs::count("regex.cache_hits", 1);
                return Ok((regex, Provenance::Memory));
            }
            Flight::Join(follower) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                msc_obs::count("regex.coalesced", 1);
                return match follower.wait() {
                    Ok(regex) => Ok((regex, Provenance::Coalesced)),
                    Err(message) => Err(RegexError::Shared(message)),
                };
            }
            Flight::Lead(leader) => leader,
        };
        let result = Regex::with_limit(pattern, self.max_meta_states).map(Arc::new);
        match &result {
            Ok(regex) => {
                // Insert before the leader guard retires the flight entry
                // (the Singleflight contract: joiners either coalesce or
                // hit the cache, never recompile).
                self.insert(key, regex);
                self.compiled.fetch_add(1, Ordering::Relaxed);
                msc_obs::count("regex.compiled", 1);
                leader.publish(Ok(Arc::clone(regex)));
            }
            Err(e) => leader.publish(Err(e.to_string())),
        }
        drop(leader);
        result.map(|regex| (regex, Provenance::Fresh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_memory() {
        let eng = RegexEngine::default();
        let (a, p1) = eng.get("ab+c").unwrap();
        assert_eq!(p1, Provenance::Fresh);
        let (b, p2) = eng.get("ab+c").unwrap();
        assert_eq!(p2, Provenance::Memory);
        assert!(Arc::ptr_eq(&a, &b), "cache returns the same compilation");
        assert_eq!((eng.compiled(), eng.hits()), (1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let eng = RegexEngine::default();
        assert!(eng.get("a(").is_err());
        assert!(eng.get("a(").is_err());
        assert_eq!(eng.compiled(), 0);
        assert!(eng.flights.is_empty(), "failed flight retired");
    }

    #[test]
    fn lru_evicts_oldest() {
        let eng = RegexEngine::new(2);
        eng.get("a").unwrap();
        eng.get("b").unwrap();
        eng.get("a").unwrap(); // refresh `a`
        eng.get("c").unwrap(); // evicts `b`
        assert_eq!(eng.get("a").unwrap().1, Provenance::Memory);
        assert_eq!(eng.get("b").unwrap().1, Provenance::Fresh);
    }

    #[test]
    fn engine_meta_state_cap_is_configurable() {
        let strict = RegexEngine::with_limits(4, 2);
        let e = strict.get("abcde").unwrap_err();
        assert!(matches!(e, RegexError::TooComplex { limit: 2 }));
        assert_eq!(strict.compiled(), 0, "rejected patterns are not cached");
        let lax = RegexEngine::with_limits(4, 64);
        assert!(lax.get("abcde").is_ok());
    }

    #[test]
    fn concurrent_identical_patterns_compile_once() {
        let eng = RegexEngine::default();
        let results: Vec<Provenance> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| eng.get("(ab|cd)+x?").unwrap().1))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(eng.compiled(), 1, "one compile for the burst: {results:?}");
        let fresh = results.iter().filter(|p| **p == Provenance::Fresh).count();
        assert_eq!(fresh, 1);
        for p in results {
            assert!(
                matches!(
                    p,
                    Provenance::Fresh | Provenance::Coalesced | Provenance::Memory
                ),
                "{p:?}"
            );
        }
    }
}
