//! One logical input made of many shards.
//!
//! Shards exist so the matcher can scan them in parallel, but matching
//! semantics are defined over the *concatenation*: a match may start in
//! one shard and end in another. [`ShardedInput`] provides absolute
//! addressing over the concatenation plus a [`Cursor`] that walks bytes
//! across shard boundaries without materializing the joined buffer.

/// Borrowed shards viewed as one contiguous byte string.
#[derive(Debug)]
pub struct ShardedInput<'a> {
    shards: &'a [&'a [u8]],
    /// `starts[i]` is the absolute offset of shard `i`; a final entry
    /// holds the total length, so `starts.len() == shards.len() + 1`.
    starts: Vec<usize>,
}

impl<'a> ShardedInput<'a> {
    /// Wrap a shard list (empty shards are fine).
    pub fn new(shards: &'a [&'a [u8]]) -> Self {
        let mut starts = Vec::with_capacity(shards.len() + 1);
        let mut off = 0usize;
        for s in shards {
            starts.push(off);
            off += s.len();
        }
        starts.push(off);
        ShardedInput { shards, starts }
    }

    /// Total length of the concatenation.
    pub fn total_len(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Absolute `[start, end)` of shard `i`.
    pub fn shard_bounds(&self, i: usize) -> (usize, usize) {
        (self.starts[i], self.starts[i + 1])
    }

    /// Byte iterator starting at absolute position `pos`.
    pub fn cursor(&self, pos: usize) -> Cursor<'a, '_> {
        debug_assert!(pos <= self.total_len());
        // partition_point gives the first shard starting *after* pos; the
        // shard containing pos is the one before it. Empty shards make
        // several starts equal — skipping happens lazily in next().
        let shard = self.starts.partition_point(|&s| s <= pos).saturating_sub(1);
        Cursor {
            input: self,
            shard,
            off: pos - self.starts[shard.min(self.shards.len().saturating_sub(1))],
            at: pos,
        }
    }
}

/// Forward byte iterator over a [`ShardedInput`].
pub struct Cursor<'a, 'b> {
    input: &'b ShardedInput<'a>,
    shard: usize,
    off: usize,
    at: usize,
}

impl Cursor<'_, '_> {
    /// Absolute position of the next byte this cursor would yield.
    pub fn pos(&self) -> usize {
        self.at
    }
}

impl Iterator for Cursor<'_, '_> {
    type Item = u8;

    #[inline]
    fn next(&mut self) -> Option<u8> {
        loop {
            let s = self.input.shards.get(self.shard)?;
            if let Some(&b) = s.get(self.off) {
                self.off += 1;
                self.at += 1;
                return Some(b);
            }
            self.shard += 1;
            self.off = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_addressing() {
        let shards: &[&[u8]] = &[b"ab", b"", b"cde", b"f"];
        let inp = ShardedInput::new(shards);
        assert_eq!(inp.total_len(), 6);
        assert_eq!(inp.shard_bounds(0), (0, 2));
        assert_eq!(inp.shard_bounds(1), (2, 2));
        assert_eq!(inp.shard_bounds(2), (2, 5));
        assert_eq!(inp.shard_bounds(3), (5, 6));
        let all: Vec<u8> = inp.cursor(0).collect();
        assert_eq!(all, b"abcdef");
        for p in 0..=6 {
            let got: Vec<u8> = inp.cursor(p).collect();
            assert_eq!(got, &b"abcdef"[p..], "cursor from {p}");
        }
    }

    #[test]
    fn empty_input() {
        let shards: &[&[u8]] = &[];
        let inp = ShardedInput::new(shards);
        assert_eq!(inp.total_len(), 0);
        assert_eq!(inp.cursor(0).next(), None);
        let shards2: &[&[u8]] = &[b"", b""];
        let inp2 = ShardedInput::new(shards2);
        assert_eq!(inp2.total_len(), 0);
        assert_eq!(inp2.cursor(0).next(), None);
    }
}
