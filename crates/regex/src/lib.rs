//! # msc-regex — data-parallel regex matching over meta states
//!
//! A second front-end for the meta-state machinery: instead of a MIMD
//! program, the "program" is a regular expression, and the converted
//! automaton's states are interned [`msc_core::StateSet`]s of Thompson
//! NFA states — the same subset construction the paper applies to
//! processor states, here applied to pattern states (the Simultaneous
//! Finite Automata view of regex matching).
//!
//! Pipeline: [`parser`] (literals, classes, `.` `*` `+` `?` `|`,
//! grouping, `^` `$`) → [`nfa`] (Thompson construction) → [`meta`]
//! (subset construction into a byte-class DFA with positional anchor
//! handling) → [`matcher`] (sequential scan, plus a sharded scan that
//! speculates per shard in parallel and stitches exactly — output is
//! bit-identical at every thread count). [`naive`] is an independent
//! AST-walking reference engine used as the differential-fuzzing oracle,
//! and [`engine`] wraps compilation in the same content-addressed
//! cache + singleflight discipline as `msc_engine`.
//!
//! Match semantics everywhere: non-overlapping leftmost-longest spans,
//! and empty matches are never reported.
//!
//! ```
//! use msc_regex::Regex;
//!
//! let re = Regex::new("ab+").unwrap();
//! let spans: Vec<(usize, usize)> = re
//!     .find_all(b"xabbyab")
//!     .into_iter()
//!     .map(|m| (m.start, m.end))
//!     .collect();
//! assert_eq!(spans, vec![(1, 4), (5, 7)]);
//! // Sharded: same input split in two, same spans, any thread count.
//! let sharded = re.find_sharded(&[b"xabb", b"yab"], 8);
//! assert_eq!(sharded, re.find_all(b"xabbyab"));
//! ```

pub mod engine;
pub mod input;
pub mod matcher;
pub mod meta;
pub mod naive;
pub mod nfa;
pub mod parser;

pub use engine::RegexEngine;
pub use input::ShardedInput;
pub use matcher::Match;
pub use meta::{MetaDfa, MAX_META_STATES};
pub use parser::{Ast, ByteSet, ParseError};

/// Why a pattern failed to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Syntax error.
    Parse(ParseError),
    /// The pattern is syntactically fine but its automaton blew a size
    /// cap (NFA states or meta states).
    TooComplex {
        /// The cap that was hit.
        limit: usize,
    },
    /// This request coalesced onto a concurrent identical compile that
    /// failed or panicked; the message is the leader's rendered error.
    Shared(String),
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::Parse(e) => write!(f, "regex parse error: {e}"),
            RegexError::TooComplex { limit } => {
                write!(f, "pattern too complex: automaton exceeds {limit} states")
            }
            RegexError::Shared(msg) => {
                write!(f, "coalesced onto a pattern compile that failed: {msg}")
            }
        }
    }
}

impl std::error::Error for RegexError {}

/// A compiled pattern: the meta-automaton plus the AST it came from
/// (kept for the naive reference engine).
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    dfa: MetaDfa,
}

impl Regex {
    /// Parse and compile a pattern with the default [`MAX_META_STATES`]
    /// meta-state cap.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        Self::with_limit(pattern, MAX_META_STATES)
    }

    /// Parse and compile a pattern, rejecting it as too complex once the
    /// subset construction exceeds `limit` meta states (0 acts as 1).
    pub fn with_limit(pattern: &str, limit: usize) -> Result<Regex, RegexError> {
        let ast = parser::parse(pattern).map_err(RegexError::Parse)?;
        let nfa = nfa::build(&ast).map_err(|e| RegexError::TooComplex { limit: e.limit })?;
        let dfa = meta::compile_with_limit(&nfa, limit)
            .map_err(|e| RegexError::TooComplex { limit: e.limit })?;
        Ok(Regex {
            pattern: pattern.to_string(),
            ast,
            dfa,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of meta states in the compiled automaton.
    pub fn meta_states(&self) -> usize {
        self.dfa.len()
    }

    /// The compiled automaton.
    pub fn dfa(&self) -> &MetaDfa {
        &self.dfa
    }

    /// All matches over one contiguous haystack.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let shards = [haystack];
        let input = ShardedInput::new(&shards);
        matcher::find_all(&self.dfa, &input)
    }

    /// All matches over the concatenation of `shards`, scanned with up
    /// to `threads` worker threads. Matches may span shard boundaries;
    /// spans are absolute offsets into the concatenation. Output is
    /// bit-identical to [`find_all`](Regex::find_all) of the
    /// concatenation for every `threads` value.
    pub fn find_sharded(&self, shards: &[&[u8]], threads: usize) -> Vec<Match> {
        let input = ShardedInput::new(shards);
        matcher::find_sharded(&self.dfa, &input, threads)
    }

    /// The naive reference engine's answer for the same haystack — an
    /// independent implementation used as differential-fuzzing oracle.
    pub fn naive_find_all(&self, haystack: &[u8]) -> Vec<(usize, usize)> {
        naive::find_all(&self.ast, haystack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_spans() {
        let re = Regex::new("(ab|ba)+").unwrap();
        let spans: Vec<(usize, usize)> = re
            .find_all(b"xababbay")
            .into_iter()
            .map(|m| (m.start, m.end))
            .collect();
        assert_eq!(spans, vec![(1, 7)]);
        assert_eq!(re.naive_find_all(b"xababbay"), spans);
    }

    #[test]
    fn errors_render() {
        let e = Regex::new("a(").unwrap_err();
        assert!(matches!(e, RegexError::Parse(_)));
        assert!(e.to_string().contains("parse error"));
        let e = Regex::new(&format!(".*a{}", ".".repeat(16))).unwrap_err();
        assert!(matches!(e, RegexError::TooComplex { .. }));
    }

    #[test]
    fn pattern_metadata() {
        let re = Regex::new("a+b").unwrap();
        assert_eq!(re.pattern(), "a+b");
        assert!(re.meta_states() >= 2);
    }

    #[test]
    fn limit_is_configurable() {
        // A pattern too complex for a tiny cap compiles fine under a
        // larger one; the error reports the cap that was actually used.
        let e = Regex::with_limit("abcde", 2).unwrap_err();
        assert!(matches!(e, RegexError::TooComplex { limit: 2 }));
        assert!(Regex::with_limit("abcde", 64).is_ok());
        // ~2¹³ meta states: over the 4096 default, under a raised cap.
        let big = format!(".*a{}", ".".repeat(12));
        assert!(Regex::new(&big).is_err());
        assert!(
            Regex::with_limit(&big, 1 << 14).is_ok(),
            "raised cap admits it"
        );
    }
}
