//! Thompson construction: [`Ast`] → ε-NFA.
//!
//! The machine is built backwards — `emit(node, cont)` returns the entry
//! state of a fragment for `node` that proceeds to `cont` — so no patch
//! lists are needed except for the loop back-edges of `*` and `+`.
//! Anchors become assertion states that consume no input; the subset
//! construction resolves them positionally (see [`crate::meta`]).

use crate::parser::{Ast, ByteSet};

/// Hard bound on NFA states; a pattern that exceeds it is rejected
/// before subset construction can amplify it.
pub const MAX_NFA_STATES: usize = 20_000;

/// One NFA state.
#[derive(Debug, Clone)]
pub enum State {
    /// Consume one byte from `set`, go to `next`.
    Byte {
        /// Accepted bytes.
        set: ByteSet,
        /// Successor state.
        next: u32,
    },
    /// ε-fork to both successors (`a` preferred order, irrelevant for
    /// the subset construction but kept deterministic).
    Split {
        /// First branch.
        a: u32,
        /// Second branch.
        b: u32,
    },
    /// `^` assertion: traversable only at position 0.
    Start {
        /// Successor state.
        next: u32,
    },
    /// `$` assertion: traversable only at end of input.
    End {
        /// Successor state.
        next: u32,
    },
    /// Accept.
    Match,
}

/// The whole machine.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// State table; ids are indices.
    pub states: Vec<State>,
    /// Entry state.
    pub start: u32,
}

/// Pattern blew the [`MAX_NFA_STATES`] bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyStates {
    /// The bound that was hit.
    pub limit: usize,
}

/// Build the NFA for a parsed pattern.
pub fn build(ast: &Ast) -> Result<Nfa, TooManyStates> {
    let mut b = Builder { states: Vec::new() };
    let accept = b.push(State::Match)?;
    let start = b.emit(ast, accept)?;
    Ok(Nfa {
        states: b.states,
        start,
    })
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn push(&mut self, s: State) -> Result<u32, TooManyStates> {
        if self.states.len() >= MAX_NFA_STATES {
            return Err(TooManyStates {
                limit: MAX_NFA_STATES,
            });
        }
        self.states.push(s);
        Ok((self.states.len() - 1) as u32)
    }

    fn emit(&mut self, ast: &Ast, cont: u32) -> Result<u32, TooManyStates> {
        Ok(match ast {
            Ast::Empty => cont,
            Ast::Class(set) => self.push(State::Byte {
                set: *set,
                next: cont,
            })?,
            Ast::AnchorStart => self.push(State::Start { next: cont })?,
            Ast::AnchorEnd => self.push(State::End { next: cont })?,
            Ast::Concat(items) => {
                let mut cont = cont;
                for item in items.iter().rev() {
                    cont = self.emit(item, cont)?;
                }
                cont
            }
            Ast::Alt(arms) => {
                let mut entries = Vec::with_capacity(arms.len());
                for arm in arms {
                    entries.push(self.emit(arm, cont)?);
                }
                // Right-fold into a Split chain; a single arm never
                // reaches here (the parser collapses it).
                let mut entry = entries.pop().expect("alt has arms");
                while let Some(e) = entries.pop() {
                    entry = self.push(State::Split { a: e, b: entry })?;
                }
                entry
            }
            Ast::Quest(inner) => {
                let body = self.emit(inner, cont)?;
                self.push(State::Split { a: body, b: cont })?
            }
            Ast::Star(inner) => {
                let loop_id = self.push(State::Split { a: 0, b: cont })?;
                let body = self.emit(inner, loop_id)?;
                let State::Split { a, .. } = &mut self.states[loop_id as usize] else {
                    unreachable!("loop_id is the Split just pushed")
                };
                *a = body;
                loop_id
            }
            Ast::Plus(inner) => {
                let loop_id = self.push(State::Split { a: 0, b: cont })?;
                let body = self.emit(inner, loop_id)?;
                let State::Split { a, .. } = &mut self.states[loop_id as usize] else {
                    unreachable!("loop_id is the Split just pushed")
                };
                *a = body;
                body
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa(pat: &str) -> Nfa {
        build(&parse(pat).unwrap()).unwrap()
    }

    #[test]
    fn literal_chain() {
        let n = nfa("ab");
        // start -> Byte(a) -> Byte(b) -> Match
        let State::Byte { set, next } = &n.states[n.start as usize] else {
            panic!("start should consume `a`")
        };
        assert!(set.contains(b'a'));
        let State::Byte { set, next } = &n.states[*next as usize] else {
            panic!("then `b`")
        };
        assert!(set.contains(b'b'));
        assert!(matches!(n.states[*next as usize], State::Match));
    }

    #[test]
    fn star_loops_back() {
        let n = nfa("a*");
        let State::Split { a, b } = &n.states[n.start as usize] else {
            panic!("star entry is a split")
        };
        let State::Byte { next, .. } = &n.states[*a as usize] else {
            panic!("body consumes `a`")
        };
        assert_eq!(*next, n.start, "body loops back to the split");
        assert!(matches!(n.states[*b as usize], State::Match));
    }

    #[test]
    fn plus_enters_body_first() {
        let n = nfa("a+");
        assert!(matches!(n.states[n.start as usize], State::Byte { .. }));
    }

    #[test]
    fn size_is_linear_and_bounded() {
        let n = nfa("(ab|cd)*ef");
        assert!(n.states.len() < 16, "{}", n.states.len());
        let huge = "a".repeat(MAX_NFA_STATES + 10);
        let ast = parse(&huge).unwrap();
        assert!(build(&ast).is_err());
    }
}
