//! Subset construction: ε-NFA → meta-automaton (a byte-class DFA).
//!
//! This is the paper's conversion applied to the regex domain: each DFA
//! state *is* a [`StateSet`] of NFA states that can coexist after reading
//! some prefix, interned in the same [`SetArena`] the MIMD converter uses.
//! Two deltas from the MIMD pipeline:
//!
//! * **Anchors are positional, not consuming.** `^` is only traversable
//!   in the closure that seeds an attempt at position 0, so the machine
//!   carries two start states (`start_bof` / `start_mid`). `$` is only
//!   traversable at total end of input, so each state carries two accept
//!   flags: `accept_mid` (Match is in the set — true anywhere) and
//!   `accept_end` (Match becomes reachable once `$` fires — true only at
//!   the end of the whole input).
//! * **No subsumption.** Folding a subset state into a superset preserves
//!   MIMD emulation but not the recognized language — a superset can
//!   accept strings the subset rejects — so the DFA keeps every distinct
//!   set. A cap on distinct meta states bounds the blowup instead.

use crate::nfa::{Nfa, State};
use msc_core::{SetArena, StateSet};
use msc_ir::StateId;
use std::collections::HashMap;

/// Transition-table sentinel: no live NFA state remains.
pub const DEAD: u32 = u32::MAX;

/// Default cap on distinct meta states; beyond it the pattern is rejected
/// as too complex rather than letting subset construction run away.
/// [`compile_with_limit`] accepts any other cap.
pub const MAX_META_STATES: usize = 4096;

/// The compiled meta-automaton.
#[derive(Debug, Clone)]
pub struct MetaDfa {
    /// Byte → equivalence class (bytes no NFA edge distinguishes share a
    /// class, shrinking each transition row from 256 to `nclasses`).
    pub classes: [u16; 256],
    /// Number of byte classes.
    pub nclasses: usize,
    /// Row-major transition table: `trans[state * nclasses + class]`,
    /// [`DEAD`] when the successor set is empty.
    pub trans: Vec<u32>,
    /// Match is in the state's set (accept at any position).
    pub accept_mid: Vec<bool>,
    /// Match is in the set or reachable from it through `$` assertions
    /// (accept only at total end of input). Implies nothing about
    /// `accept_mid`.
    pub accept_end: Vec<bool>,
    /// Start state for an attempt at position 0, or [`DEAD`].
    pub start_bof: u32,
    /// Start state for an attempt anywhere else, or [`DEAD`].
    pub start_mid: u32,
}

impl MetaDfa {
    /// Number of meta states.
    pub fn len(&self) -> usize {
        self.accept_mid.len()
    }

    /// True when the automaton has no states (both starts dead).
    pub fn is_empty(&self) -> bool {
        self.accept_mid.is_empty()
    }

    /// Successor of `state` on byte `b`, or [`DEAD`].
    #[inline]
    pub fn step(&self, state: u32, b: u8) -> u32 {
        self.trans[state as usize * self.nclasses + self.classes[b as usize] as usize]
    }
}

/// Subset construction hit [`MAX_META_STATES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooComplex {
    /// The cap that was hit.
    pub limit: usize,
}

/// ε-closure of `seeds`: expand `Split` unconditionally and `Start` only
/// when `at_start`; keep `Byte` / `Match` / `End` states as the set's
/// identity. (`End` members stay opaque here — they fire in
/// [`end_accepts`], never mid-input.)
fn closure(nfa: &Nfa, seeds: impl IntoIterator<Item = u32>, at_start: bool) -> StateSet {
    let mut seen = vec![false; nfa.states.len()];
    let mut stack: Vec<u32> = seeds.into_iter().collect();
    let mut members = Vec::new();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id as usize], true) {
            continue;
        }
        match nfa.states[id as usize] {
            State::Split { a, b } => {
                stack.push(a);
                stack.push(b);
            }
            State::Start { next } => {
                if at_start {
                    stack.push(next);
                }
            }
            State::Byte { .. } | State::End { .. } | State::Match => members.push(StateId(id)),
        }
    }
    StateSet::from_iter(members)
}

/// Does `set` accept at total end of input? True when Match is a member
/// or becomes reachable by firing `$` assertions (and the ε states behind
/// them). `^` is not traversable here: end-of-input coincides with
/// position 0 only on empty input, where any match would be empty and
/// empty matches are never reported.
fn end_accepts(nfa: &Nfa, set: &StateSet) -> bool {
    let mut seen = vec![false; nfa.states.len()];
    let mut stack: Vec<u32> = set
        .iter()
        .filter(|s| matches!(nfa.states[s.0 as usize], State::End { .. }))
        .map(|s| s.0)
        .collect();
    if set
        .iter()
        .any(|s| matches!(nfa.states[s.0 as usize], State::Match))
    {
        return true;
    }
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id as usize], true) {
            continue;
        }
        match nfa.states[id as usize] {
            State::Match => return true,
            State::End { next } => stack.push(next),
            State::Split { a, b } => {
                stack.push(a);
                stack.push(b);
            }
            State::Start { .. } | State::Byte { .. } => {}
        }
    }
    false
}

/// Partition bytes into equivalence classes: two bytes share a class iff
/// every `Byte` state of the NFA treats them identically. Returns the
/// class table, the class count, and one representative byte per class.
fn byte_classes(nfa: &Nfa) -> ([u16; 256], usize, Vec<u8>) {
    let byte_states: Vec<&crate::parser::ByteSet> = nfa
        .states
        .iter()
        .filter_map(|s| match s {
            State::Byte { set, .. } => Some(set),
            _ => None,
        })
        .collect();
    let words = byte_states.len().div_ceil(64).max(1);
    let mut classes = [0u16; 256];
    let mut reps: Vec<u8> = Vec::new();
    let mut sig_to_class: HashMap<Vec<u64>, u16> = HashMap::new();
    for b in 0..=255u8 {
        let mut sig = vec![0u64; words];
        for (i, set) in byte_states.iter().enumerate() {
            if set.contains(b) {
                sig[i / 64] |= 1u64 << (i % 64);
            }
        }
        let next = sig_to_class.len() as u16;
        let class = *sig_to_class.entry(sig).or_insert_with(|| {
            reps.push(b);
            next
        });
        classes[b as usize] = class;
    }
    (classes, reps.len(), reps)
}

/// Run the subset construction with the default [`MAX_META_STATES`] cap.
pub fn compile(nfa: &Nfa) -> Result<MetaDfa, TooComplex> {
    compile_with_limit(nfa, MAX_META_STATES)
}

/// Run the subset construction, rejecting the pattern once more than
/// `limit` distinct meta states exist (a `limit` of 0 is treated as 1).
pub fn compile_with_limit(nfa: &Nfa, limit: usize) -> Result<MetaDfa, TooComplex> {
    let limit = limit.max(1);
    let (classes, nclasses, reps) = byte_classes(nfa);
    let mut arena = SetArena::new();

    let intern_nonempty = |arena: &mut SetArena, set: StateSet| -> u32 {
        if set.is_empty() {
            DEAD
        } else {
            arena.intern(set).0
        }
    };

    let start_bof = intern_nonempty(&mut arena, closure(nfa, [nfa.start], true));
    let start_mid = intern_nonempty(&mut arena, closure(nfa, [nfa.start], false));

    let mut trans: Vec<u32> = Vec::new();
    let mut accept_mid: Vec<bool> = Vec::new();
    let mut accept_end: Vec<bool> = Vec::new();

    // The arena grows as BFS discovers successors; meta state i is the
    // i-th interned set, so a plain index sweep visits every state once.
    let mut i = 0usize;
    while i < arena.len() {
        let set = arena.get(msc_core::SetId(i as u32));
        accept_mid.push(
            set.iter()
                .any(|s| matches!(nfa.states[s.0 as usize], State::Match)),
        );
        accept_end.push(end_accepts(nfa, &set));
        for &rep in &reps {
            let seeds: Vec<u32> = set
                .iter()
                .filter_map(|s| match nfa.states[s.0 as usize] {
                    State::Byte { ref set, next } if set.contains(rep) => Some(next),
                    _ => None,
                })
                .collect();
            let succ = intern_nonempty(&mut arena, closure(nfa, seeds, false));
            if arena.len() > limit {
                return Err(TooComplex { limit });
            }
            trans.push(succ);
        }
        i += 1;
    }

    Ok(MetaDfa {
        classes,
        nclasses,
        trans,
        accept_mid,
        accept_end,
        start_bof,
        start_mid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::build;
    use crate::parser::parse;

    fn dfa(pat: &str) -> MetaDfa {
        compile(&build(&parse(pat).unwrap()).unwrap()).unwrap()
    }

    /// Longest accepting run from the given start over `input`; None when
    /// no non-empty prefix accepts. Mirrors what the matcher does.
    fn longest(d: &MetaDfa, start: u32, input: &[u8], total_end: bool) -> Option<usize> {
        let mut state = start;
        let mut best = None;
        if state == DEAD {
            return None;
        }
        for (i, &b) in input.iter().enumerate() {
            state = d.step(state, b);
            if state == DEAD {
                return best;
            }
            let at_end = total_end && i + 1 == input.len();
            if d.accept_mid[state as usize] || (at_end && d.accept_end[state as usize]) {
                best = Some(i + 1);
            }
        }
        best
    }

    #[test]
    fn literal_run() {
        let d = dfa("abc");
        assert_eq!(longest(&d, d.start_bof, b"abc", true), Some(3));
        assert_eq!(longest(&d, d.start_mid, b"abcd", true), Some(3));
        assert_eq!(longest(&d, d.start_mid, b"abd", true), None);
    }

    #[test]
    fn alternation_takes_longest() {
        let d = dfa("a|ab");
        assert_eq!(longest(&d, d.start_mid, b"ab", true), Some(2));
        assert_eq!(longest(&d, d.start_mid, b"ax", true), Some(1));
    }

    #[test]
    fn star_is_greedy_in_length() {
        let d = dfa("a+");
        assert_eq!(longest(&d, d.start_mid, b"aaab", true), Some(3));
    }

    #[test]
    fn start_anchor_only_fires_at_bof() {
        let d = dfa("^ab");
        assert_eq!(longest(&d, d.start_bof, b"ab", true), Some(2));
        assert_eq!(d.start_mid, DEAD, "^ab cannot start mid-input");
    }

    #[test]
    fn end_anchor_needs_total_end() {
        let d = dfa("ab$");
        assert_eq!(longest(&d, d.start_mid, b"ab", true), Some(2));
        assert_eq!(longest(&d, d.start_mid, b"ab", false), None);
        assert_eq!(longest(&d, d.start_mid, b"abc", true), None);
    }

    #[test]
    fn byte_classes_collapse() {
        let d = dfa("[a-c]x");
        // a, b, c share a class; x has its own; everything else is one
        // dead class.
        assert_eq!(d.classes[b'a' as usize], d.classes[b'b' as usize]);
        assert_ne!(d.classes[b'a' as usize], d.classes[b'x' as usize]);
        assert!(d.nclasses <= 4, "{}", d.nclasses);
    }

    #[test]
    fn complexity_cap_trips() {
        // (a|b)(a|b)...(a|b) with many .* separators stays small, so use a
        // pattern with genuinely exponential subset blowup:
        // .*a.{k} has ~2^k distinct sets tracking the last k positions.
        let pat = format!(".*a{}", ".".repeat(16));
        let nfa = build(&parse(&pat).unwrap()).unwrap();
        assert!(matches!(
            compile(&nfa),
            Err(TooComplex {
                limit: MAX_META_STATES
            })
        ));
    }

    #[test]
    fn limit_parameter_replaces_default_cap() {
        let nfa = build(&parse("abcde").unwrap()).unwrap();
        assert!(matches!(
            compile_with_limit(&nfa, 2),
            Err(TooComplex { limit: 2 })
        ));
        assert!(compile_with_limit(&nfa, 64).is_ok());
        // A zero limit clamps to 1 instead of rejecting vacuously.
        assert!(matches!(
            compile_with_limit(&nfa, 0),
            Err(TooComplex { limit: 1 })
        ));
    }

    #[test]
    fn dot_star_is_one_live_state() {
        let d = dfa("a*");
        assert!(d.len() <= 3, "{}", d.len());
        assert_eq!(longest(&d, d.start_mid, b"aa", true), Some(2));
        assert_eq!(
            longest(&d, d.start_mid, b"b", true),
            None,
            "empty match dropped"
        );
    }
}
