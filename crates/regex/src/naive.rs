//! Naive reference engine — the fuzz oracle's ground truth.
//!
//! Deliberately shares *nothing* with the production path: it walks the
//! [`Ast`] directly (no NFA, no subset construction, no sharding),
//! computing for each (subexpression, position) the full set of possible
//! match ends, memoized to stay polynomial. Alternation and repetition
//! are explored exhaustively — "longest" falls out of taking the maximum
//! end, not out of any greediness encoding — so agreement with the DFA
//! matcher is evidence about the construction, not a shared bug.
//!
//! Semantics match [`crate::matcher`]: non-overlapping leftmost-longest,
//! empty matches never reported, anchors judged against the whole input.

use crate::parser::Ast;
use std::collections::HashMap;

struct Ends<'a> {
    input: &'a [u8],
    /// (AST node identity, position) → sorted possible match ends.
    memo: HashMap<(usize, usize), Vec<usize>>,
}

fn key(ast: &Ast, pos: usize) -> (usize, usize) {
    (ast as *const Ast as usize, pos)
}

impl Ends<'_> {
    /// All positions `e` such that `ast` matches `input[pos..e]`, sorted
    /// ascending. May include `pos` itself (empty match of this subtree).
    fn ends(&mut self, ast: &Ast, pos: usize) -> Vec<usize> {
        if let Some(hit) = self.memo.get(&key(ast, pos)) {
            return hit.clone();
        }
        let mut out = match ast {
            Ast::Empty => vec![pos],
            Ast::Class(set) => match self.input.get(pos) {
                Some(&b) if set.contains(b) => vec![pos + 1],
                _ => vec![],
            },
            Ast::AnchorStart => {
                if pos == 0 {
                    vec![pos]
                } else {
                    vec![]
                }
            }
            Ast::AnchorEnd => {
                if pos == self.input.len() {
                    vec![pos]
                } else {
                    vec![]
                }
            }
            Ast::Concat(items) => {
                let mut frontier = vec![pos];
                for item in items {
                    let mut next: Vec<usize> =
                        frontier.iter().flat_map(|&q| self.ends(item, q)).collect();
                    next.sort_unstable();
                    next.dedup();
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier
            }
            Ast::Alt(arms) => {
                let mut all: Vec<usize> = arms.iter().flat_map(|a| self.ends(a, pos)).collect();
                all.sort_unstable();
                all.dedup();
                all
            }
            Ast::Quest(x) => {
                let mut all = self.ends(x, pos);
                all.push(pos);
                all.sort_unstable();
                all.dedup();
                all
            }
            Ast::Star(x) => self.closure(x, vec![pos]),
            Ast::Plus(x) => {
                let first = self.ends(x, pos);
                self.closure(x, first)
            }
        };
        out.sort_unstable();
        out.dedup();
        self.memo.insert(key(ast, pos), out.clone());
        out
    }

    /// Reachability closure for repetition: every end obtainable from the
    /// seed set by zero or more further iterations of `x`. Only
    /// *progressing* iterations (`e > q`) are followed — an empty
    /// iteration reaches nothing new, so dropping it loses no end and
    /// guarantees termination.
    fn closure(&mut self, x: &Ast, seeds: Vec<usize>) -> Vec<usize> {
        let mut reached: Vec<bool> = vec![false; self.input.len() + 2];
        let mut stack = Vec::new();
        let mut out = Vec::new();
        for q in seeds {
            if !std::mem::replace(&mut reached[q], true) {
                stack.push(q);
                out.push(q);
            }
        }
        while let Some(q) = stack.pop() {
            for e in self.ends(x, q) {
                if e > q && !std::mem::replace(&mut reached[e], true) {
                    stack.push(e);
                    out.push(e);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Longest end `> pos` of a match starting at `pos`, or `None`.
fn attempt(ends: &mut Ends<'_>, ast: &Ast, pos: usize) -> Option<usize> {
    ends.ends(ast, pos).into_iter().filter(|&e| e > pos).max()
}

/// All matches over `input` as `(start, end)` spans, under the shared
/// find-all protocol (leftmost-longest, non-overlapping, no empties).
pub fn find_all(ast: &Ast, input: &[u8]) -> Vec<(usize, usize)> {
    let mut ends = Ends {
        input,
        memo: HashMap::new(),
    };
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < input.len() {
        match attempt(&mut ends, ast, p) {
            Some(e) => {
                out.push((p, e));
                p = e;
            }
            None => p += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn naive(pat: &str, input: &[u8]) -> Vec<(usize, usize)> {
        find_all(&parse(pat).unwrap(), input)
    }

    #[test]
    fn agrees_on_basics() {
        assert_eq!(naive("ab", b"xabyab"), vec![(1, 3), (4, 6)]);
        assert_eq!(naive("a+", b"aaabaa"), vec![(0, 3), (4, 6)]);
        assert_eq!(naive("a|ab", b"ab"), vec![(0, 2)]);
        assert_eq!(naive("a*", b"bab"), vec![(1, 2)]);
        assert_eq!(naive("^a", b"aba"), vec![(0, 1)]);
        assert_eq!(naive("a$", b"aba"), vec![(2, 3)]);
        assert_eq!(naive("^a+$", b"aab"), vec![]);
        assert_eq!(naive(".", b"a\nb"), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn nested_repetition_terminates() {
        // (a*)* can loop forever in a backtracker; the progressing-ends
        // closure handles it.
        assert_eq!(naive("(a*)*b", b"aaab"), vec![(0, 4)]);
        assert_eq!(naive("(a?)+", b"aa"), vec![(0, 2)]);
    }

    #[test]
    fn differential_against_dfa_matcher() {
        use crate::input::ShardedInput;
        let patterns = [
            "a",
            "ab",
            "a+",
            "a*b",
            "a|b",
            "(ab|ba)+",
            "[a-c]+",
            "[^a]b",
            "^ab",
            "ab$",
            "^a.*b$",
            "a?a?aa",
            ".+",
            "(a|ab)(c|bc)",
        ];
        let inputs: &[&[u8]] = &[
            b"",
            b"a",
            b"ab",
            b"ba",
            b"abc",
            b"aabbab",
            b"abababab",
            b"xaybz",
            b"aa\nbb",
            b"cabcabc",
        ];
        for pat in patterns {
            let ast = parse(pat).unwrap();
            let dfa = crate::meta::compile(&crate::nfa::build(&ast).unwrap()).unwrap();
            for &input in inputs {
                let shards = [input];
                let inp = ShardedInput::new(&shards);
                let got: Vec<(usize, usize)> = crate::matcher::find_all(&dfa, &inp)
                    .into_iter()
                    .map(|m| (m.start, m.end))
                    .collect();
                assert_eq!(
                    got,
                    naive(pat, input),
                    "pattern {pat:?} input {:?}",
                    String::from_utf8_lossy(input)
                );
            }
        }
    }
}
