//! Byte-oriented regex parser.
//!
//! Supported syntax: literals, escapes (`\n \t \r \0`, escaped
//! metacharacters, `\d \w \s` and their negations), character classes
//! (`[abc]`, `[a-z0-9]`, `[^...]`), `.` (any byte except `\n`), the
//! postfix quantifiers `*` `+` `?`, alternation `|`, grouping `(...)`,
//! and the anchors `^` (position 0) and `$` (end of input).
//!
//! The parser works on bytes: a multi-byte UTF-8 literal is a
//! concatenation of its bytes, and classes are restricted to ASCII
//! ranges. Nesting depth is bounded so adversarial patterns (serve
//! accepts them from the network) cannot overflow the stack.

use std::fmt;

/// Maximum grouping depth; beyond it parsing fails instead of recursing.
pub const MAX_DEPTH: usize = 80;

/// A set of bytes, as a 256-bit bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSet(pub [u64; 4]);

impl ByteSet {
    /// The empty set.
    pub fn empty() -> ByteSet {
        ByteSet([0; 4])
    }

    /// The singleton set `{b}`.
    pub fn single(b: u8) -> ByteSet {
        let mut s = ByteSet::empty();
        s.add(b);
        s
    }

    /// Every byte except `\n` — the meaning of `.`.
    pub fn dot() -> ByteSet {
        let mut s = ByteSet([!0; 4]);
        s.0[(b'\n' >> 6) as usize] &= !(1u64 << (b'\n' & 63));
        s
    }

    /// Insert one byte.
    pub fn add(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Insert the inclusive range `lo..=hi`.
    pub fn add_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.add(b);
        }
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.0[(b >> 6) as usize] >> (b & 63) & 1 == 1
    }

    /// The complement set.
    pub fn negate(&self) -> ByteSet {
        ByteSet([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }

    /// Union in place.
    pub fn union_with(&mut self, other: &ByteSet) {
        for i in 0..4 {
            self.0[i] |= other.0[i];
        }
    }

    /// True when no byte is a member.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }
}

/// Parsed pattern. Literals are single-byte [`Ast::Class`] nodes; groups
/// are transparent (the tree is the semantics, spans are not captured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// One byte drawn from the set.
    Class(ByteSet),
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Zero or more (`*`).
    Star(Box<Ast>),
    /// One or more (`+`).
    Plus(Box<Ast>),
    /// Zero or one (`?`).
    Quest(Box<Ast>),
    /// `^`: matches the empty string at position 0.
    AnchorStart,
    /// `$`: matches the empty string at end of input.
    AnchorEnd,
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the pattern.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alt(0)?;
    match p.peek() {
        None => Ok(ast),
        Some(b')') => Err(p.err("unmatched `)`")),
        Some(b) => Err(p.err(format!("unexpected `{}`", b as char))),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alt(&mut self, depth: usize) -> Result<Ast, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        let mut arms = vec![self.concat(depth)?];
        while self.peek() == Some(b'|') {
            self.bump();
            arms.push(self.concat(depth)?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Ast::Alt(arms)
        })
    }

    fn concat(&mut self, depth: usize) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat(depth)?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self, depth: usize) -> Result<Ast, ParseError> {
        let atom = self.atom(depth)?;
        let quantified = matches!(self.peek(), Some(b'*') | Some(b'+') | Some(b'?'));
        if !quantified {
            return Ok(atom);
        }
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(self.err("cannot repeat an anchor"));
        }
        let op = self.bump().expect("peeked quantifier");
        Ok(match op {
            b'*' => Ast::Star(Box::new(atom)),
            b'+' => Ast::Plus(Box::new(atom)),
            _ => Ast::Quest(Box::new(atom)),
        })
    }

    fn atom(&mut self, depth: usize) -> Result<Ast, ParseError> {
        let Some(b) = self.bump() else {
            return Err(self.err("expected an atom"));
        };
        match b {
            b'(' => {
                let inner = self.alt(depth + 1)?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unclosed `(`"));
                }
                Ok(inner)
            }
            b'.' => Ok(Ast::Class(ByteSet::dot())),
            b'^' => Ok(Ast::AnchorStart),
            b'$' => Ok(Ast::AnchorEnd),
            b'[' => self.class(),
            b'\\' => self.escape().map(Ast::Class),
            b'*' | b'+' | b'?' => Err(self.err("nothing to repeat")),
            other => Ok(Ast::Class(ByteSet::single(other))),
        }
    }

    /// One escape sequence (after the `\`), yielding the byte set it
    /// denotes. Shared by top-level atoms and class members.
    fn escape(&mut self) -> Result<ByteSet, ParseError> {
        let Some(b) = self.bump() else {
            return Err(self.err("trailing `\\`"));
        };
        let mut set = ByteSet::empty();
        match b {
            b'n' => set.add(b'\n'),
            b't' => set.add(b'\t'),
            b'r' => set.add(b'\r'),
            b'0' => set.add(0),
            b'd' | b'D' => {
                set.add_range(b'0', b'9');
                if b == b'D' {
                    set = set.negate();
                }
            }
            b'w' | b'W' => {
                set.add_range(b'a', b'z');
                set.add_range(b'A', b'Z');
                set.add_range(b'0', b'9');
                set.add(b'_');
                if b == b'W' {
                    set = set.negate();
                }
            }
            b's' | b'S' => {
                for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.add(c);
                }
                if b == b'S' {
                    set = set.negate();
                }
            }
            c if c.is_ascii_alphanumeric() => {
                return Err(self.err(format!("unknown escape `\\{}`", c as char)))
            }
            c => set.add(c),
        }
        Ok(set)
    }

    /// A character class, with `[` already consumed.
    fn class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.peek() == Some(b'^');
        if negated {
            self.bump();
        }
        let mut set = ByteSet::empty();
        let mut any = false;
        loop {
            let Some(b) = self.bump() else {
                return Err(self.err("unclosed `[`"));
            };
            match b {
                b']' => {
                    if !any {
                        return Err(self.err("empty class"));
                    }
                    let set = if negated { set.negate() } else { set };
                    return Ok(Ast::Class(set));
                }
                b'\\' => {
                    set.union_with(&self.escape()?);
                    any = true;
                }
                lo => {
                    // A `-` between two plain bytes is a range; at either
                    // end of the class it is a literal dash.
                    if self.peek() == Some(b'-')
                        && self.bytes.get(self.pos + 1).is_some_and(|&b| b != b']')
                    {
                        self.bump(); // the dash
                        let Some(hi) = self.bump() else {
                            return Err(self.err("unclosed `[`"));
                        };
                        if hi == b'\\' || !lo.is_ascii() || !hi.is_ascii() {
                            return Err(self.err("class ranges must be plain ASCII bytes"));
                        }
                        if lo > hi {
                            return Err(
                                self.err(format!("invalid range `{}-{}`", lo as char, hi as char))
                            );
                        }
                        set.add_range(lo, hi);
                    } else {
                        if !lo.is_ascii() {
                            return Err(self.err("class members must be ASCII (escape raw bytes)"));
                        }
                        set.add(lo);
                    }
                    any = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(ast: &Ast) -> &ByteSet {
        match ast {
            Ast::Class(s) => s,
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn literals_and_concat() {
        let ast = parse("ab").unwrap();
        let Ast::Concat(items) = ast else {
            panic!("expected concat")
        };
        assert!(class_of(&items[0]).contains(b'a'));
        assert!(class_of(&items[1]).contains(b'b'));
    }

    #[test]
    fn precedence_alt_concat_repeat() {
        // `ab|c*` is (ab)|(c*), not a(b|c)*.
        let Ast::Alt(arms) = parse("ab|c*").unwrap() else {
            panic!("expected alt")
        };
        assert!(matches!(arms[0], Ast::Concat(_)));
        assert!(matches!(arms[1], Ast::Star(_)));
    }

    #[test]
    fn classes_ranges_negation() {
        let s = *class_of(&parse("[a-c0]").unwrap());
        for b in [b'a', b'b', b'c', b'0'] {
            assert!(s.contains(b));
        }
        assert!(!s.contains(b'd'));
        let n = *class_of(&parse("[^a]").unwrap());
        assert!(!n.contains(b'a') && n.contains(b'b') && n.contains(0xff));
        // Literal dash at the edge.
        let d = *class_of(&parse("[-a]").unwrap());
        assert!(d.contains(b'-') && d.contains(b'a'));
        let d = *class_of(&parse("[a-]").unwrap());
        assert!(d.contains(b'-') && d.contains(b'a'));
    }

    #[test]
    fn dot_excludes_newline() {
        let s = *class_of(&parse(".").unwrap());
        assert!(s.contains(b'a') && s.contains(0x00) && !s.contains(b'\n'));
    }

    #[test]
    fn escapes() {
        assert!(class_of(&parse(r"\n").unwrap()).contains(b'\n'));
        assert!(class_of(&parse(r"\.").unwrap()).contains(b'.'));
        let d = *class_of(&parse(r"\d").unwrap());
        assert!(d.contains(b'5') && !d.contains(b'a'));
        let nd = *class_of(&parse(r"\D").unwrap());
        assert!(!nd.contains(b'5') && nd.contains(b'a'));
        let w = *class_of(&parse(r"[\w-]").unwrap());
        assert!(w.contains(b'_') && w.contains(b'-'));
    }

    #[test]
    fn anchors_and_groups() {
        let Ast::Concat(items) = parse("^a(b|c)$").unwrap() else {
            panic!("expected concat")
        };
        assert_eq!(items[0], Ast::AnchorStart);
        assert!(matches!(items[2], Ast::Alt(_)));
        assert_eq!(items[3], Ast::AnchorEnd);
    }

    #[test]
    fn utf8_literal_is_byte_concat() {
        let Ast::Concat(items) = parse("é").unwrap() else {
            panic!("expected concat of the two UTF-8 bytes")
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn rejections() {
        for (pat, needle) in [
            ("*a", "nothing to repeat"),
            ("a**", "nothing to repeat"),
            ("^*", "cannot repeat an anchor"),
            ("(a", "unclosed `(`"),
            ("a)", "unmatched `)`"),
            ("[", "unclosed `[`"),
            ("[]", "empty class"),
            ("[z-a]", "invalid range"),
            (r"\q", "unknown escape"),
            (r"a\", "trailing `\\`"),
        ] {
            let err = parse(pat).unwrap_err();
            assert!(err.msg.contains(needle), "{pat}: {err}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "(".repeat(500) + "a" + &")".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
    }

    #[test]
    fn empty_pattern_parses() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        assert_eq!(
            parse("a|").unwrap(),
            Ast::Alt(vec![Ast::Class(ByteSet::single(b'a')), Ast::Empty,])
        );
    }
}
