//! DFA execution: sequential scan and data-parallel sharded scan.
//!
//! Semantics (shared with the naive reference engine): non-overlapping
//! **leftmost-longest** matches, and **empty matches are never reported**.
//! At position `p` the matcher runs one attempt — the longest `e > p`
//! such that `input[p..e]` is accepted, honoring anchors against the
//! whole input — records `(p, e)` and resumes at `e`, or advances to
//! `p + 1` when the attempt fails.
//!
//! The parallel scan is the SFA trick made exact. An attempt depends only
//! on its start position and the input, never on scan history, so each
//! shard can be scanned *speculatively* in parallel from its own start
//! offset (reading past its end for boundary-spanning matches). A
//! sequential stitch pass then walks the true attempt positions: the
//! moment the true position lands on an attempt position the speculative
//! scan also visited, the rest of that shard's speculative matches are
//! spliced in verbatim. Only positions shadowed by a match that spans
//! into the shard are re-attempted (at most one live attempt per
//! boundary), so the result is **bit-identical** to the sequential scan
//! at every thread count, by construction rather than by tolerance.

use crate::input::ShardedInput;
use crate::meta::{MetaDfa, DEAD};

/// One match as an absolute half-open span over the shard concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Absolute start offset.
    pub start: usize,
    /// Absolute end offset (exclusive); always `> start`.
    pub end: usize,
}

/// Run one attempt at absolute position `p`: longest accepting end
/// `e > p`, or `None`.
fn attempt(dfa: &MetaDfa, input: &ShardedInput<'_>, p: usize, total: usize) -> Option<usize> {
    let mut state = if p == 0 { dfa.start_bof } else { dfa.start_mid };
    if state == DEAD {
        return None;
    }
    let mut best = None;
    let mut q = p;
    for b in input.cursor(p) {
        state = dfa.step(state, b);
        if state == DEAD {
            break;
        }
        q += 1;
        if dfa.accept_mid[state as usize] || (q == total && dfa.accept_end[state as usize]) {
            best = Some(q);
        }
    }
    best
}

/// Scan attempt positions in `[from, until)`, reading input up to `total`
/// as matches demand. Returns the matches found plus the *exit position*:
/// the first attempt position `>= until` (greater than `until` exactly
/// when the final match spans past it).
fn scan_range(
    dfa: &MetaDfa,
    input: &ShardedInput<'_>,
    from: usize,
    until: usize,
    total: usize,
) -> (Vec<Match>, usize) {
    let mut out = Vec::new();
    let mut p = from;
    while p < until {
        match attempt(dfa, input, p, total) {
            Some(e) => {
                out.push(Match { start: p, end: e });
                p = e;
            }
            None => p += 1,
        }
    }
    (out, p)
}

/// Sequential reference scan over the whole input.
pub fn find_all(dfa: &MetaDfa, input: &ShardedInput<'_>) -> Vec<Match> {
    let total = input.total_len();
    scan_range(dfa, input, 0, total, total).0
}

/// Data-parallel scan: speculative per-shard scans on up to `threads`
/// worker threads, then a sequential stitch. Output is identical to
/// [`find_all`] for every `threads` value.
pub fn find_sharded(dfa: &MetaDfa, input: &ShardedInput<'_>, threads: usize) -> Vec<Match> {
    let n = input.shard_count();
    let total = input.total_len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return find_all(dfa, input);
    }
    msc_obs::count("regex.parallel_scans", 1);

    // Phase 1: speculative scans, one result slot per shard. chunks_mut
    // hands each worker a disjoint slice, so no synchronization is
    // needed beyond the scope join.
    let mut slots: Vec<Option<(Vec<Match>, usize)>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (tid, group) in slots.chunks_mut(chunk).enumerate() {
            let base = tid * chunk;
            scope.spawn(move || {
                for (j, slot) in group.iter_mut().enumerate() {
                    let (s, e) = input.shard_bounds(base + j);
                    *slot = Some(scan_range(dfa, input, s, e, total));
                }
            });
        }
    });

    // Phase 2: stitch. `t` is the true attempt position.
    let mut out = Vec::new();
    let mut t = 0usize;
    for (i, slot) in slots.iter_mut().enumerate() {
        let (s_i, e_i) = input.shard_bounds(i);
        let (matches, exit) = slot.take().expect("phase 1 filled every slot");
        while t < e_i {
            // `t` is an attempt position the speculative scan for this
            // shard also visited iff it is not strictly inside one of its
            // matches (the scan attempted at s_i, every match end, and
            // every failed position in between).
            let k = matches.partition_point(|m| m.start <= t);
            let inside_spec = k > 0 && matches[k - 1].end > t && matches[k - 1].start < t;
            if t >= s_i && !inside_spec {
                out.extend_from_slice(&matches[matches.partition_point(|m| m.start < t)..]);
                t = exit;
                break;
            }
            // A match spanning into this shard shadowed the speculative
            // attempt positions; re-run true attempts until we re-sync.
            msc_obs::count("regex.stitch_rescans", 1);
            match attempt(dfa, input, t, total) {
                Some(e) => {
                    out.push(Match { start: t, end: e });
                    t = e;
                }
                None => t += 1,
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::compile;
    use crate::nfa::build;
    use crate::parser::parse;

    fn dfa(pat: &str) -> MetaDfa {
        compile(&build(&parse(pat).unwrap()).unwrap()).unwrap()
    }

    fn spans(pat: &str, shards: &[&[u8]]) -> Vec<(usize, usize)> {
        let d = dfa(pat);
        let inp = ShardedInput::new(shards);
        let seq = find_all(&d, &inp);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                find_sharded(&d, &inp, threads),
                seq,
                "threads={threads} must be bit-identical"
            );
        }
        seq.iter().map(|m| (m.start, m.end)).collect()
    }

    #[test]
    fn simple_literals() {
        assert_eq!(spans("ab", &[b"xabyab"]), vec![(1, 3), (4, 6)]);
        assert_eq!(spans("ab", &[b"ab"]), vec![(0, 2)]);
        assert_eq!(spans("ab", &[b"ba"]), vec![]);
    }

    #[test]
    fn greedy_longest() {
        assert_eq!(spans("a+", &[b"aaabaa"]), vec![(0, 3), (4, 6)]);
        assert_eq!(spans("a|ab", &[b"ab"]), vec![(0, 2)]);
    }

    #[test]
    fn empty_matches_are_skipped() {
        assert_eq!(spans("a*", &[b"bab"]), vec![(1, 2)]);
        assert_eq!(spans("x?", &[b"yy"]), vec![]);
    }

    #[test]
    fn anchors() {
        assert_eq!(spans("^a", &[b"aba"]), vec![(0, 1)]);
        assert_eq!(spans("a$", &[b"aba"]), vec![(2, 3)]);
        assert_eq!(spans("^a+$", &[b"aaa"]), vec![(0, 3)]);
        assert_eq!(spans("^a+$", &[b"aab"]), vec![]);
    }

    #[test]
    fn matches_span_shard_boundaries() {
        // "abab" split as "ab|ab": match (0,2) is inside shard 0, match
        // (2,4) starts exactly at the boundary.
        assert_eq!(spans("ab", &[b"ab", b"ab"]), vec![(0, 2), (2, 4)]);
        // "xaby" split mid-match.
        assert_eq!(spans("ab", &[b"xa", b"by"]), vec![(1, 3)]);
        // One match covering three shards.
        assert_eq!(spans("a+", &[b"aa", b"aa", b"aa"]), vec![(0, 6)]);
        // Greedy run crossing a boundary shadows the speculative matches
        // of the next shard.
        assert_eq!(spans("a+b", &[b"aaa", b"ab"]), vec![(0, 5)]);
    }

    #[test]
    fn end_anchor_only_fires_on_final_shard() {
        assert_eq!(spans("a$", &[b"a", b"a"]), vec![(1, 2)]);
        assert_eq!(spans("ab$", &[b"a", b"b"]), vec![(0, 2)]);
    }

    #[test]
    fn empty_shards_and_empty_input() {
        assert_eq!(spans("a", &[]), vec![]);
        assert_eq!(spans("a", &[b"", b""]), vec![]);
        assert_eq!(spans("a", &[b"", b"a", b""]), vec![(0, 1)]);
    }

    #[test]
    fn dot_does_not_match_newline() {
        assert_eq!(spans("a.c", &[b"a\ncabc"]), vec![(3, 6)]);
    }
}
