//! `mscc` — thin shell over [`msc_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match msc_cli::main_with_args(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("mscc: {e}");
            std::process::exit(1);
        }
    }
}
