//! # msc-cli — the `mscc` command-line driver
//!
//! ```text
//! mscc build prog.mimdc --emit automaton      # print the meta-state graph
//! mscc build prog.mimdc --emit mpl            # Listing-5-style SIMD code
//! mscc build prog.mimdc --emit dot            # Graphviz of the automaton
//! mscc build prog.mimdc --emit graph          # the MIMD state graph
//! mscc build prog.mimdc --stats               # conversion stats + timings
//! mscc build prog.mimdc --jobs 8              # frontier-parallel conversion
//! mscc build prog.mimdc --cache .msc-cache    # reuse artifacts across runs
//! mscc batch a.mimdc b.mimdc c.mimdc          # compile many over a pool
//! mscc run   prog.mimdc --pes 16              # execute and print results
//! mscc run   prog.mimdc --compare             # also run MIMD ref + interpreter
//! ```
//!
//! Shared flags: `--mode base|compressed`, `--time-split`, `--optimize`,
//! `--minimize`, `--no-csi`, `--pes N`, `--pool N` (live PEs, rest idle).
//!
//! Engine flags (build and batch): `--jobs N` runs meta-state conversion
//! frontier-parallel on N threads (0 = all cores; batch also uses the pool
//! to compile files concurrently); `--cache DIR` persists compiled
//! artifacts content-addressed under DIR, so an unchanged source + options
//! combination is reloaded instead of recompiled; `--stats` appends a
//! stats block (meta-state counts, conversion counters, per-phase
//! timings, cache hits/misses). Any engine flag routes the build through
//! [`metastate::Engine`].
//!
//! The argument parser and command execution live in this library so they
//! are unit-testable; `main.rs` is a thin shell.

use metastate::{ConvertMode, Engine, EngineOptions, Pipeline, Provenance, TimeSplitOptions};
use msc_ir::CostModel;
use msc_simd::MachineConfig;
use std::fmt;
use std::sync::Arc;

/// What `mscc build --emit` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// The meta-state automaton as text.
    Automaton,
    /// MPL-like SIMD code (Listing 5 style).
    Mpl,
    /// Graphviz of the automaton.
    Dot,
    /// The MIMD state graph as text.
    Graph,
    /// Reloadable SIMD assembly (see `msc_simd::asm`).
    Asm,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mscc build FILE`.
    Build {
        /// Source path.
        file: String,
        /// What to print.
        emit: Emit,
        /// Common options.
        opts: CommonOpts,
    },
    /// `mscc run FILE`.
    Run {
        /// Source path.
        file: String,
        /// PEs to simulate.
        pes: usize,
        /// Live PEs at start (None = all; Some(n) leaves a spawn pool).
        pool: Option<usize>,
        /// Also run the MIMD reference and interpreter and compare.
        compare: bool,
        /// Print the meta-state execution trace.
        trace: bool,
        /// Common options.
        opts: CommonOpts,
    },
    /// `mscc batch FILE...`: compile many files over a worker pool.
    Batch {
        /// Source paths.
        files: Vec<String>,
        /// Common options.
        opts: CommonOpts,
    },
    /// `mscc sweep FILE`: compile and run one workload across a machine
    /// profile matrix and emit per-profile comparison tables.
    Sweep {
        /// Source path.
        file: String,
        /// Profile files and/or directories (`--profiles`, comma
        /// separated). Empty = `profiles/` when present, else the bundled
        /// matrix.
        profiles: Vec<String>,
        /// Common options.
        opts: CommonOpts,
    },
    /// `mscc serve`: run the compile-and-run daemon until SIGINT/SIGTERM.
    Serve {
        /// Bind address (port 0 = ephemeral).
        addr: String,
        /// Worker threads (0 = all cores).
        workers: usize,
        /// Admission queue depth (beyond it requests are shed with 503).
        queue_depth: usize,
        /// Disk cache directory.
        cache: Option<String>,
        /// Server-side ceiling on every job's explosion guard (None =
        /// the daemon default).
        max_meta_states: Option<usize>,
        /// Force the blocking thread-per-connection core instead of the
        /// epoll reactor.
        blocking: bool,
        /// Sibling daemons (`host:port`) consulted on local cache
        /// misses before compiling.
        peers: Vec<String>,
    },
    /// `mscc fuzz`: differential fuzzing over the whole oracle matrix.
    Fuzz {
        /// Run seed (every case derives from it).
        seed: u64,
        /// Cases to generate and check.
        cases: u64,
        /// Live PEs per case.
        pes: usize,
        /// Meta-state bound; beyond it an oracle is skipped, not failed.
        max_states: usize,
        /// Directory for minimized reproducers.
        corpus: Option<String>,
        /// Comma-separated oracle list (None = the full in-process set).
        oracles: Option<String>,
        /// Start an in-process daemon and include the serve oracle.
        serve: bool,
        /// Use an already-running daemon for the serve oracle.
        serve_addr: Option<String>,
        /// Replay a corpus reproducer file instead of fuzzing.
        replay: Option<String>,
        /// `--trace-out FILE` (observability).
        trace_out: Option<String>,
        /// `--metrics` (observability).
        metrics: bool,
    },
    /// `mscc match PATTERN [FILE]...`: data-parallel regex matching.
    Match {
        /// The regex pattern.
        pattern: String,
        /// Input files (empty = read stdin).
        files: Vec<String>,
        /// Matcher threads (0 = all cores).
        threads: usize,
    },
    /// `mscc help` / `-h` / `--help`.
    Help,
}

/// Options shared by build and run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonOpts {
    /// Conversion mode.
    pub mode: ConvertMode,
    /// §2.4 time splitting.
    pub time_split: bool,
    /// Peephole optimization.
    pub optimize: bool,
    /// Bisimulation minimization.
    pub minimize: bool,
    /// Disable CSI in codegen.
    pub no_csi: bool,
    /// Conversion / batch worker threads (1 = classic sequential path,
    /// 0 = all cores). Any value other than 1 routes through the engine.
    pub jobs: usize,
    /// Artifact cache directory (routes through the engine).
    pub cache: Option<String>,
    /// Append the stats block to build/batch output (routes through the
    /// engine).
    pub stats: bool,
    /// Stream structured observability events (spans, counters, samples)
    /// to this JSONL file for the duration of the command.
    pub trace_out: Option<String>,
    /// Append the end-of-run metrics summary table (aggregated from the
    /// same event stream).
    pub metrics: bool,
    /// Explosion guard override: fail conversion past this many meta
    /// states (None = the mode's default, 2²⁰).
    pub max_meta_states: Option<usize>,
    /// Conversion memory budget in bytes (`k`/`m`/`g` suffixes accepted);
    /// past it the interned-set arena and worklist spill to temp files.
    /// None = the `MSC_MEMORY_BUDGET` env default (or never spill).
    pub memory_budget: Option<usize>,
}

impl CommonOpts {
    /// True when any engine feature was requested.
    pub fn wants_engine(&self) -> bool {
        self.jobs != 1 || self.cache.is_some() || self.stats
    }
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts {
            mode: ConvertMode::Base,
            time_split: false,
            optimize: false,
            minimize: false,
            no_csi: false,
            jobs: 1,
            cache: None,
            stats: false,
            trace_out: None,
            metrics: false,
            max_meta_states: None,
            memory_budget: None,
        }
    }
}

/// CLI failures (parse or execution).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
mscc — Meta-State Conversion compiler driver

USAGE:
  mscc build <FILE>    [--emit automaton|mpl|dot|graph|asm] [common flags] [engine flags]
  mscc batch <FILE>... [common flags] [engine flags]
  mscc run   <FILE>    [--pes N] [--pool N] [--compare] [--trace] [common flags]
  mscc sweep <FILE>    [--profiles FILES/DIRS,...] [common flags] [engine flags]
  mscc serve           [--addr HOST:PORT] [--workers N] [--queue-depth N] [--cache DIR]
                       [--max-meta-states N] [--blocking] [--peers HOST:PORT,...]
  mscc fuzz            [--seed N] [--cases N] [--pes N] [--max-states N] [--corpus DIR]
                       [--oracles LIST] [--serve | --serve-addr HOST:PORT] [--replay FILE]
  mscc match <PATTERN> [FILE]... [--threads N]
  mscc help

COMMON FLAGS:
  --mode base|compressed   conversion mode (default: base)
  --time-split             enable §2.4 time splitting
  --optimize               peephole-optimize blocks first
  --minimize               merge bisimilar MIMD states first
  --no-csi                 disable common subexpression induction
  --max-meta-states N      explosion guard: fail conversion past N meta
                           states (default 1048576)
  --memory-budget BYTES    spill cold meta-state sets and the worklist
                           tail to temp files past BYTES resident (k/m/g
                           suffixes; default: MSC_MEMORY_BUDGET env, else
                           never spill)

ENGINE FLAGS (build and batch):
  --jobs N                 convert frontier-parallel on N threads (0 = all cores);
                           batch also compiles files concurrently
  --cache DIR              content-addressed artifact cache: unchanged
                           source + options reload instead of recompiling
  --stats                  append meta-state counts, conversion counters,
                           per-phase timings, and cache hit/miss counters

SWEEP FLAGS:
  --profiles LIST          comma list of machine-profile JSON files and/or
                           directories of them (default: the profiles/
                           directory when present, else the bundled
                           paper-default/wide-simd/slow-globalor/
                           cheap-dispatch matrix); each profile compiles
                           in parallel over the engine pool (--jobs,
                           default all cores) and runs on its own machine;
                           output is an aligned per-profile comparison
                           table plus a machine-readable JSON summary line

SERVE FLAGS:
  --addr HOST:PORT         bind address (default 127.0.0.1:7643; port 0 = ephemeral)
  --workers N              connection worker threads (default: all cores)
  --queue-depth N          admission queue depth; beyond it requests are
                           shed with 503 + Retry-After (default 64)
  --cache DIR              on-disk compile cache shared across restarts
  --max-meta-states N      ceiling on every job's explosion guard; requests
                           asking for more are clamped (default 1048576)
  --blocking               serve with the blocking thread-per-connection core
                           instead of the epoll reactor (reactor is the
                           default on Linux; MSC_SERVE_BLOCKING=1 forces
                           blocking too)
  --peers HOST:PORT,...    sibling daemons consulted on local cache misses
                           before compiling (GET /artifact/{key}); a sick
                           peer is skipped via a per-peer circuit breaker

FUZZ FLAGS:
  --seed N                 run seed; case k is reproducible from (seed, k) (default 1)
  --cases N                cases to generate and check (default 200)
  --pes N                  live PEs per case (default 5)
  --max-states N           meta-state bound; oracles skip past it (default
                           3000; --max-meta-states is accepted as an alias)
  --corpus DIR             write minimized reproducers here on mismatch
  --oracles LIST           comma list: interp,base,compressed,timesplit,nocsi,
                           engine:N,cache,serve,regex,selftest (default: all
                           in-process)
  --serve                  start an in-process daemon and fuzz it over TCP
  --serve-addr HOST:PORT   fuzz an already-running daemon instead
  --replay FILE            re-run a corpus reproducer and report whether it
                           still diverges
  exit status is nonzero when any mismatch is found; the last stdout line
  is a machine-readable JSON summary either way

MATCH FLAGS:
  --threads N              matcher threads for sharded scanning (default 0
                           = all cores); spans are identical at any count
  with no FILE, the pattern is matched against stdin; supported syntax is
  literals, classes [a-z] [^…], . * + ? |, grouping, and ^/$ anchors

OBSERVABILITY FLAGS (all commands):
  --trace-out FILE         stream structured events (spans, counters,
                           samples) as JSON lines to FILE
  --metrics                append an end-of-run metrics summary table
";

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(|| CliError(USAGE.into()))?;
    match cmd.as_str() {
        "help" | "-h" | "--help" => Ok(Command::Help),
        "build" | "run" | "batch" | "sweep" => {
            let mut files: Vec<String> = Vec::new();
            let mut emit = Emit::Automaton;
            let mut pes = 8usize;
            let mut pool: Option<usize> = None;
            let mut compare = false;
            let mut trace = false;
            let mut profiles: Vec<String> = Vec::new();
            let mut jobs_set = false;
            let mut opts = CommonOpts::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--profiles" if cmd == "sweep" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--profiles needs files/dirs".into()))?;
                        profiles.extend(v.split(',').filter(|s| !s.is_empty()).map(String::from));
                    }
                    "--emit" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--emit needs a value".into()))?;
                        emit = match v.as_str() {
                            "automaton" => Emit::Automaton,
                            "mpl" => Emit::Mpl,
                            "dot" => Emit::Dot,
                            "graph" => Emit::Graph,
                            "asm" => Emit::Asm,
                            other => return Err(CliError(format!("unknown emit kind `{other}`"))),
                        };
                    }
                    "--mode" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--mode needs a value".into()))?;
                        opts.mode = match v.as_str() {
                            "base" => ConvertMode::Base,
                            "compressed" => ConvertMode::Compressed,
                            other => return Err(CliError(format!("unknown mode `{other}`"))),
                        };
                    }
                    "--pes" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--pes needs a value".into()))?;
                        pes = v
                            .parse()
                            .map_err(|_| CliError(format!("bad PE count `{v}`")))?;
                    }
                    "--pool" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--pool needs a value".into()))?;
                        pool = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad pool count `{v}`")))?,
                        );
                    }
                    "--time-split" => opts.time_split = true,
                    "--optimize" => opts.optimize = true,
                    "--minimize" => opts.minimize = true,
                    "--no-csi" => opts.no_csi = true,
                    "--compare" => compare = true,
                    "--trace" => trace = true,
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--jobs needs a value".into()))?;
                        opts.jobs = v
                            .parse()
                            .map_err(|_| CliError(format!("bad job count `{v}`")))?;
                        jobs_set = true;
                    }
                    "--cache" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--cache needs a directory".into()))?;
                        opts.cache = Some(v.clone());
                    }
                    "--stats" => opts.stats = true,
                    "--trace-out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--trace-out needs a file path".into()))?;
                        opts.trace_out = Some(v.clone());
                    }
                    "--metrics" => opts.metrics = true,
                    "--max-meta-states" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--max-meta-states needs a value".into()))?;
                        let n: usize = v
                            .parse()
                            .map_err(|_| CliError(format!("bad meta-state limit `{v}`")))?;
                        if n == 0 {
                            return Err(CliError("--max-meta-states must be at least 1".into()));
                        }
                        opts.max_meta_states = Some(n);
                    }
                    "--memory-budget" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--memory-budget needs a byte size".into()))?;
                        opts.memory_budget = Some(msc_core::parse_bytes(v).ok_or_else(|| {
                            CliError(format!("bad memory budget `{v}` (try 64m, 2g, 65536)"))
                        })?);
                    }
                    other if !other.starts_with('-') && (cmd == "batch" || files.is_empty()) => {
                        files.push(other.to_string());
                    }
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            if files.is_empty() {
                return Err(CliError("missing input file".into()));
            }
            Ok(match cmd.as_str() {
                "build" => Command::Build {
                    file: files.remove(0),
                    emit,
                    opts,
                },
                "batch" => Command::Batch { files, opts },
                "sweep" => {
                    if !jobs_set {
                        // Profile compiles are independent; default to the
                        // whole pool (and thereby the engine path).
                        opts.jobs = 0;
                    }
                    Command::Sweep {
                        file: files.remove(0),
                        profiles,
                        opts,
                    }
                }
                _ => Command::Run {
                    file: files.remove(0),
                    pes,
                    pool,
                    compare,
                    trace,
                    opts,
                },
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7643".to_string();
            let mut workers = 0usize;
            let mut queue_depth = 64usize;
            let mut cache: Option<String> = None;
            let mut max_meta_states: Option<usize> = None;
            let mut blocking = false;
            let mut peers: Vec<String> = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| CliError("--addr needs HOST:PORT".into()))?
                            .clone();
                    }
                    "--workers" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--workers needs a value".into()))?;
                        workers = v
                            .parse()
                            .map_err(|_| CliError(format!("bad worker count `{v}`")))?;
                    }
                    "--queue-depth" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--queue-depth needs a value".into()))?;
                        queue_depth = v
                            .parse()
                            .map_err(|_| CliError(format!("bad queue depth `{v}`")))?;
                    }
                    "--cache" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--cache needs a directory".into()))?;
                        cache = Some(v.clone());
                    }
                    "--max-meta-states" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--max-meta-states needs a value".into()))?;
                        let n: usize = v
                            .parse()
                            .map_err(|_| CliError(format!("bad meta-state cap `{v}`")))?;
                        if n == 0 {
                            return Err(CliError("--max-meta-states must be at least 1".into()));
                        }
                        max_meta_states = Some(n);
                    }
                    "--blocking" => blocking = true,
                    "--peers" => {
                        let v = it.next().ok_or_else(|| {
                            CliError("--peers needs a comma-separated HOST:PORT list".into())
                        })?;
                        for p in v.split(',') {
                            let p = p.trim();
                            if p.is_empty() {
                                return Err(CliError(format!("empty peer address in `{v}`")));
                            }
                            peers.push(p.to_string());
                        }
                    }
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            Ok(Command::Serve {
                addr,
                workers,
                queue_depth,
                cache,
                max_meta_states,
                blocking,
                peers,
            })
        }
        "fuzz" => {
            let mut seed = 1u64;
            let mut cases = 200u64;
            let mut pes = 5usize;
            let mut max_states = 3000usize;
            let mut corpus: Option<String> = None;
            let mut oracles: Option<String> = None;
            let mut serve = false;
            let mut serve_addr: Option<String> = None;
            let mut replay: Option<String> = None;
            let mut trace_out: Option<String> = None;
            let mut metrics = false;
            fn num<'a>(
                it: &mut impl Iterator<Item = &'a String>,
                flag: &str,
            ) -> Result<u64, CliError> {
                let v = it
                    .next()
                    .ok_or_else(|| CliError(format!("{flag} needs a value")))?;
                v.parse()
                    .map_err(|_| CliError(format!("bad value `{v}` for {flag}")))
            }
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => seed = num(&mut it, "--seed")?,
                    "--cases" => cases = num(&mut it, "--cases")?,
                    "--pes" => pes = num(&mut it, "--pes")? as usize,
                    "--max-states" => max_states = num(&mut it, "--max-states")? as usize,
                    // Same knob under the name the other commands use.
                    "--max-meta-states" => {
                        max_states = num(&mut it, "--max-meta-states")? as usize;
                    }
                    "--corpus" => {
                        corpus = Some(
                            it.next()
                                .ok_or_else(|| CliError("--corpus needs a directory".into()))?
                                .clone(),
                        );
                    }
                    "--oracles" => {
                        oracles = Some(
                            it.next()
                                .ok_or_else(|| CliError("--oracles needs a list".into()))?
                                .clone(),
                        );
                    }
                    "--serve" => serve = true,
                    "--serve-addr" => {
                        serve_addr = Some(
                            it.next()
                                .ok_or_else(|| CliError("--serve-addr needs HOST:PORT".into()))?
                                .clone(),
                        );
                    }
                    "--replay" => {
                        replay = Some(
                            it.next()
                                .ok_or_else(|| CliError("--replay needs a file".into()))?
                                .clone(),
                        );
                    }
                    "--trace-out" => {
                        trace_out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--trace-out needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--metrics" => metrics = true,
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            if pes == 0 {
                return Err(CliError("--pes must be at least 1".into()));
            }
            if serve && (metrics || trace_out.is_some()) {
                // Server::start holds the process-global obs install lock
                // for its lifetime; a CLI obs session on top would block
                // forever. An external daemon has its own process, so
                // --serve-addr composes fine.
                return Err(CliError(
                    "--serve owns the in-process metrics registry; combine --metrics/--trace-out \
                     with --serve-addr instead"
                        .into(),
                ));
            }
            Ok(Command::Fuzz {
                seed,
                cases,
                pes,
                max_states,
                corpus,
                oracles,
                serve,
                serve_addr,
                replay,
                trace_out,
                metrics,
            })
        }
        "match" => {
            let mut pattern: Option<String> = None;
            let mut files: Vec<String> = Vec::new();
            let mut threads = 0usize;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--threads needs a value".into()))?;
                        threads = v
                            .parse()
                            .map_err(|_| CliError(format!("bad thread count `{v}`")))?;
                    }
                    // The first positional is the pattern — even when it
                    // starts with `-` inside a class or alternation the
                    // shell-friendly spelling is to quote it; a leading
                    // `-` that is not a known flag is accepted as pattern
                    // text so `mscc match '-+'` works.
                    other if pattern.is_none() => pattern = Some(other.to_string()),
                    other if !other.starts_with('-') => files.push(other.to_string()),
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            let pattern = pattern.ok_or_else(|| CliError("missing pattern".into()))?;
            Ok(Command::Match {
                pattern,
                files,
                threads,
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn build_pipeline(src: &str, opts: &CommonOpts) -> Pipeline {
    // Guard/budget overrides must come after mode(): mode() resets the
    // conversion options to that mode's defaults.
    let mut p = Pipeline::new(src).mode(opts.mode);
    if let Some(n) = opts.max_meta_states {
        p = p.max_meta_states(n);
    }
    if let Some(b) = opts.memory_budget {
        p = p.memory_budget(Some(b));
    }
    if opts.time_split {
        p = p.time_split(TimeSplitOptions::default());
    }
    if opts.optimize {
        p = p.optimize();
    }
    if opts.minimize {
        p = p.minimize();
    }
    if opts.no_csi {
        p = p.gen_options(metastate::GenOptions {
            csi: false,
            ..Default::default()
        });
    }
    p
}

/// Build an [`Engine`] from the engine-related common options.
fn engine_for(opts: &CommonOpts) -> Engine {
    Engine::new(EngineOptions {
        threads: opts.jobs,
        cache_dir: opts.cache.as_ref().map(std::path::PathBuf::from),
        ..EngineOptions::default()
    })
}

/// The `--stats` block for one compiled artifact.
fn stats_block(artifact: &metastate::Artifact, provenance: Provenance, engine: &Engine) -> String {
    let s = &artifact.stats;
    let t = &artifact.timings;
    let c = engine.cache_stats();
    let mut out = String::from("\n-- stats --\n");
    out.push_str(&format!("provenance: {provenance}\n"));
    match &artifact.automaton {
        Some(a) => out.push_str(&format!(
            "meta states: {} (avg width {:.2}, max width {})\n",
            a.len(),
            a.avg_width(),
            a.max_width()
        )),
        None => out.push_str(&format!("meta states: {}\n", artifact.meta_states)),
    }
    out.push_str(&format!(
        "conversion: {} restarts, {} splits, {} subsumed, {} successor sets enumerated\n",
        s.restarts, s.splits, s.subsumed, s.successor_sets_enumerated
    ));
    out.push_str(&format!(
        "timings: compile {:?}, convert {:?}, codegen {:?}\n",
        t.compile, t.convert, t.codegen
    ));
    out.push_str(&format!(
        "cache: {} memory hits, {} disk hits, {} peer hits, {} misses, {} coalesced, {} insertions, {} evictions\n",
        c.hits,
        c.disk_hits,
        c.peer_hits,
        c.misses,
        engine.coalesced(),
        c.insertions,
        c.evictions
    ));
    out.push_str(&format!("threads: {}\n", engine.threads()));
    out
}

/// `mscc build` through the engine: parallel conversion + cache. Artifacts
/// reloaded from the disk cache carry the program and automaton text but
/// not the in-memory IR, so `--emit dot|graph` falls back to a fresh
/// classic build for them.
fn execute_build_engine(
    file: &str,
    emit: &Emit,
    opts: &CommonOpts,
    src: &str,
) -> Result<String, CliError> {
    let engine = engine_for(opts);
    let job = build_pipeline(src, opts).into_job(file);
    let out = engine.compile(&job).map_err(|e| CliError(e.to_string()))?;
    let artifact = &out.artifact;
    let mut text = match emit {
        Emit::Automaton => {
            let mut t = artifact.automaton_text.clone();
            match &artifact.automaton {
                Some(a) => t.push_str(&format!(
                    "\n{} meta states, avg width {:.2}, max width {}\n",
                    a.len(),
                    a.avg_width(),
                    a.max_width()
                )),
                None => t.push_str(&format!("\n{} meta states\n", artifact.meta_states)),
            }
            t
        }
        Emit::Mpl => metastate::render_mpl(&artifact.simd),
        Emit::Asm => msc_simd::serialize_asm(&artifact.simd),
        Emit::Dot => match &artifact.automaton {
            Some(a) => a.dot(),
            None => classic_built(src, opts)?.automaton.dot(),
        },
        Emit::Graph => {
            let graph_text =
                |p: &msc_lang::Program| msc_ir::render::text(&p.graph, &CostModel::default());
            match &artifact.compiled {
                Some(p) => graph_text(p),
                None => graph_text(&classic_built(src, opts)?.compiled),
            }
        }
    };
    if opts.stats {
        text.push_str(&stats_block(artifact, out.provenance, &engine));
    }
    Ok(text)
}

fn classic_built(src: &str, opts: &CommonOpts) -> Result<metastate::Built, CliError> {
    build_pipeline(src, opts)
        .build()
        .map_err(|e| CliError(e.to_string()))
}

fn mode_name(mode: ConvertMode) -> &'static str {
    match mode {
        ConvertMode::Base => "base",
        ConvertMode::Compressed => "compressed",
    }
}

/// Resolve `--profiles` specs (files and/or directories) into the profile
/// matrix. No specs: the committed `profiles/` directory when present,
/// else the bundled matrix (same content — the tier-1 tests pin the
/// committed files bit-equal to [`msc_simd::MachineProfile::bundled`]).
fn load_profiles(specs: &[String]) -> Result<Vec<msc_simd::MachineProfile>, CliError> {
    use msc_simd::MachineProfile;
    let mut out = Vec::new();
    if specs.is_empty() {
        let dir = std::path::Path::new("profiles");
        if dir.is_dir() {
            out = MachineProfile::load_dir(dir).map_err(|e| CliError(format!("profiles/: {e}")))?;
        } else {
            out = MachineProfile::bundled();
        }
    } else {
        for spec in specs {
            let path = std::path::Path::new(spec);
            if path.is_dir() {
                out.extend(
                    MachineProfile::load_dir(path).map_err(|e| CliError(format!("{spec}: {e}")))?,
                );
            } else {
                out.push(MachineProfile::load(path).map_err(|e| CliError(format!("{spec}: {e}")))?);
            }
        }
    }
    if out.is_empty() {
        return Err(CliError("no machine profiles found".into()));
    }
    Ok(out)
}

/// One measured profile in a sweep.
struct SweepRow {
    name: String,
    pe_count: usize,
    meta_states: usize,
    cycles: u64,
    utilization: f64,
    interp_cycles: u64,
    speedup: f64,
}

/// `mscc sweep`: compile the workload once per profile (each profile's
/// cost model is part of the [`metastate::Job`], so the engine pool
/// parallelizes the compiles and the cache keys stay distinct), run each
/// program on its profile's machine, and price the §1.1 interpreter
/// baseline under the same profile for the speedup column. Output: an
/// aligned text table plus one machine-readable JSON line.
pub fn execute_sweep(
    file: &str,
    src: &str,
    profiles: &[msc_simd::MachineProfile],
    opts: &CommonOpts,
) -> Result<String, CliError> {
    use msc_obs::json::Json;
    msc_obs::count("sweep.profiles", profiles.len() as u64);
    let program = msc_lang::compile(src).map_err(|e| CliError(e.to_string()))?;
    let engine = engine_for(opts);
    let jobs: Vec<metastate::Job> = profiles
        .iter()
        .map(|p| {
            build_pipeline(src, opts)
                .costs(p.costs.clone())
                .into_job(format!("{file}@{}", p.name))
        })
        .collect();
    let compiled = engine.compile_many(&jobs);

    let mut rows: Vec<SweepRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (p, result) in profiles.iter().zip(compiled) {
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                msc_obs::count("sweep.errors", 1);
                failures.push(format!("{}: compile failed: {e}", p.name));
                continue;
            }
        };
        let cfg = p.machine_config();
        let simd = &out.artifact.simd;
        let mut machine = metastate::SimdMachine::new(simd, &cfg);
        let metrics = match machine.run(simd, &cfg) {
            Ok(m) => m,
            Err(e) => {
                msc_obs::count("sweep.errors", 1);
                failures.push(format!("{}: run failed: {e}", p.name));
                continue;
            }
        };
        let interp_cycles = match msc_mimd::interpret_on_simd(
            &program.graph,
            program.layout.poly_words,
            program.layout.mono_words,
            p.pe_count,
            &p.costs,
        ) {
            Ok((_, im)) => im.cycles,
            Err(e) => {
                msc_obs::count("sweep.errors", 1);
                failures.push(format!("{}: interpreter baseline failed: {e}", p.name));
                continue;
            }
        };
        msc_obs::count("sweep.runs", 1);
        rows.push(SweepRow {
            name: p.name.clone(),
            pe_count: p.pe_count,
            meta_states: out.artifact.meta_states,
            cycles: metrics.cycles,
            utilization: metrics.utilization(),
            interp_cycles,
            speedup: interp_cycles as f64 / metrics.cycles as f64,
        });
    }

    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(["profile".len()])
        .max()
        .expect("chain is non-empty");
    let mut text = format!(
        "sweep: {file} across {} profile(s) ({} mode)\n\n",
        profiles.len(),
        mode_name(opts.mode),
    );
    text.push_str(&format!(
        "{:<name_w$}  {:>4}  {:>6}  {:>12}  {:>6}  {:>12}  {:>8}\n",
        "profile", "PEs", "states", "cycles", "util%", "interp", "speedup"
    ));
    for r in &rows {
        text.push_str(&format!(
            "{:<name_w$}  {:>4}  {:>6}  {:>12}  {:>6.1}  {:>12}  {:>7.2}x\n",
            r.name,
            r.pe_count,
            r.meta_states,
            r.cycles,
            r.utilization * 100.0,
            r.interp_cycles,
            r.speedup
        ));
    }
    let json = Json::obj(vec![
        ("workload", Json::from(file)),
        ("mode", Json::from(mode_name(opts.mode))),
        (
            "profiles",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::from(r.name.as_str())),
                            ("pe_count", Json::from(r.pe_count)),
                            ("meta_states", Json::from(r.meta_states)),
                            ("cycles", Json::from(r.cycles)),
                            ("utilization", Json::from(r.utilization)),
                            ("interp_cycles", Json::from(r.interp_cycles)),
                            ("speedup", Json::from(r.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    text.push('\n');
    text.push_str(&json.render());
    text.push('\n');
    if !failures.is_empty() {
        return Err(CliError(format!(
            "{text}\nsweep failures:\n  {}",
            failures.join("\n  ")
        )));
    }
    Ok(text)
}

/// Observability wiring for one CLI invocation: installs the subscribers
/// the flags ask for (a metrics [`msc_obs::Registry`] for `--metrics`, a
/// [`msc_obs::JsonlSink`] for `--trace-out`, fanned out when both) for the
/// duration of the command. Exactly one session is installed per
/// invocation — nesting would deadlock on the obs install lock, so
/// [`execute_batch`] owns the session for batches and
/// [`execute_on_source`] owns it for build/run.
struct ObsSession {
    registry: Option<Arc<msc_obs::Registry>>,
    sink: Option<Arc<msc_obs::JsonlSink<std::fs::File>>>,
    guard: msc_obs::InstallGuard,
}

impl ObsSession {
    /// Start a session if the options ask for one; `None` means the
    /// command runs with observability fully disabled (the zero-cost
    /// path).
    fn start(opts: &CommonOpts) -> Result<Option<ObsSession>, CliError> {
        if !opts.metrics && opts.trace_out.is_none() {
            return Ok(None);
        }
        let registry = if opts.metrics {
            Some(Arc::new(msc_obs::Registry::new()))
        } else {
            None
        };
        let sink = match &opts.trace_out {
            Some(path) => {
                Some(Arc::new(msc_obs::JsonlSink::create(path).map_err(|e| {
                    CliError(format!("cannot open trace file {path}: {e}"))
                })?))
            }
            None => None,
        };
        let mut subs: Vec<Arc<dyn msc_obs::Subscriber>> = Vec::new();
        if let Some(r) = &registry {
            subs.push(r.clone());
        }
        if let Some(s) = &sink {
            subs.push(s.clone());
        }
        let guard = if subs.len() == 1 {
            msc_obs::install(subs.pop().expect("one subscriber"))
        } else {
            msc_obs::install(Arc::new(msc_obs::Fanout::new(subs)))
        };
        Ok(Some(ObsSession {
            registry,
            sink,
            guard,
        }))
    }

    /// Uninstall the subscribers, flush the trace file, and return the
    /// rendered metrics table (empty when `--metrics` was not given).
    fn finish(self) -> Result<String, CliError> {
        drop(self.guard);
        if let Some(sink) = &self.sink {
            sink.flush()
                .map_err(|e| CliError(format!("cannot flush trace file: {e}")))?;
        }
        Ok(self
            .registry
            .map(|r| r.snapshot().render_table())
            .unwrap_or_default())
    }
}

/// `mscc fuzz`: run the differential fuzzer, or replay one reproducer.
///
/// The returned report ends with a machine-readable JSON summary line.
/// When the run finds mismatches the report comes back as `Err`, so the
/// driver exits nonzero without losing the reproducer paths; a replay
/// always returns `Ok` (its JSON says whether the bug still reproduces).
pub fn execute_fuzz(cmd: &Command) -> Result<String, CliError> {
    use msc_obs::json::Json;
    let Command::Fuzz {
        seed,
        cases,
        pes,
        max_states,
        corpus,
        oracles,
        serve,
        serve_addr,
        replay,
        trace_out,
        metrics,
    } = cmd
    else {
        return Err(CliError("not a fuzz command".into()));
    };
    let mut matrix = match oracles {
        Some(list) => msc_fuzz::Oracle::parse_list(list).map_err(CliError)?,
        None => msc_fuzz::Oracle::default_set(),
    };
    let wants_serve = *serve || serve_addr.is_some();
    if wants_serve && !matrix.contains(&msc_fuzz::Oracle::Serve) {
        matrix.push(msc_fuzz::Oracle::Serve);
    }
    let handle = if *serve {
        Some(
            msc_serve::Server::start(msc_serve::ServeOptions {
                addr: "127.0.0.1:0".into(),
                workers: 4,
                ..msc_serve::ServeOptions::default()
            })
            .map_err(|e| CliError(format!("cannot start in-process daemon: {e}")))?,
        )
    } else {
        None
    };
    let resolved_addr = serve_addr
        .clone()
        .or_else(|| handle.as_ref().map(|h| h.local_addr().to_string()));
    let obs_opts = CommonOpts {
        trace_out: trace_out.clone(),
        metrics: *metrics,
        ..CommonOpts::default()
    };
    let session = ObsSession::start(&obs_opts)?;
    let cfg = msc_fuzz::FuzzConfig {
        seed: *seed,
        cases: *cases,
        oracles: matrix,
        corpus_dir: corpus.as_ref().map(std::path::PathBuf::from),
        oracle_cfg: msc_fuzz::OracleConfig {
            n_pe: *pes,
            max_meta_states: *max_states,
            serve_addr: resolved_addr,
            scratch_dir: None,
        },
        ..msc_fuzz::FuzzConfig::default()
    };
    let mut text = String::new();
    let mut found = 0u64;
    if let Some(path) = replay {
        let repro = msc_fuzz::Reproducer::read(std::path::Path::new(path)).map_err(CliError)?;
        let result = msc_fuzz::replay(&repro, &cfg);
        for m in &result.mismatches {
            text.push_str(&format!("{}: {}\n", m.oracle, m.detail));
        }
        let reproduced = result.mismatches.iter().any(|m| m.oracle == repro.oracle);
        text.push_str(&format!(
            "{}\n",
            Json::obj(vec![
                ("replay", Json::from(path.as_str())),
                ("seed", Json::from(repro.seed)),
                ("case", Json::from(repro.case_index)),
                ("oracle", Json::from(repro.oracle.as_str())),
                ("reproduced", Json::from(reproduced)),
                ("mismatches", Json::from(result.mismatches.len())),
            ])
            .render()
        ));
    } else {
        let total = *cases;
        let summary = msc_fuzz::run_fuzz_with(&cfg, |i, r| {
            if !r.clean() {
                eprintln!("mscc fuzz: mismatch in case {i}");
            } else if (i + 1) % 100 == 0 {
                eprintln!("mscc fuzz: {}/{total} cases clean", i + 1);
            }
        });
        for path in &summary.reproducers {
            text.push_str(&format!("reproducer: {path}\n"));
        }
        text.push_str(&format!("{}\n", summary.to_json().render()));
        found = summary.mismatches;
    }
    if let Some(session) = session {
        text.push_str(&session.finish()?);
    }
    if let Some(h) = handle {
        h.shutdown();
    }
    if found > 0 {
        Err(CliError(format!("{found} mismatch(es) found\n{text}")))
    } else {
        Ok(text)
    }
}

/// Render matched bytes for terminal output: printable ASCII as-is,
/// common escapes by name, the rest as `\xNN`.
fn escape_bytes(bytes: &[u8]) -> String {
    let mut s = String::new();
    for &b in bytes {
        match b {
            b'\\' => s.push_str("\\\\"),
            b'\n' => s.push_str("\\n"),
            b'\t' => s.push_str("\\t"),
            0x20..=0x7e => s.push(b as char),
            _ => s.push_str(&format!("\\x{b:02x}")),
        }
    }
    s
}

/// Split a haystack into up to `n` contiguous shards for the sharded
/// scanner. More shards than threads keeps every worker busy even when
/// match density is uneven across the input.
fn shard_bytes(bytes: &[u8], n: usize) -> Vec<&[u8]> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let chunk = bytes.len().div_ceil(n.clamp(1, bytes.len()));
    bytes.chunks(chunk).collect()
}

/// `mscc match`: compile the pattern once, scan every input sharded.
/// Spans are byte offsets into each input and — by the stitching
/// construction — identical at every thread count.
pub fn execute_match(
    pattern: &str,
    inputs: &[(String, Vec<u8>)],
    threads: usize,
) -> Result<String, CliError> {
    let re = msc_regex::Regex::new(pattern).map_err(|e| CliError(e.to_string()))?;
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let mut text = String::new();
    let mut total = 0usize;
    for (name, bytes) in inputs {
        let shards = shard_bytes(bytes, threads * 4);
        let matches = re.find_sharded(&shards, threads);
        for m in &matches {
            text.push_str(&format!(
                "{name}:{}..{}: {}\n",
                m.start,
                m.end,
                escape_bytes(&bytes[m.start..m.end]),
            ));
        }
        total += matches.len();
    }
    text.push_str(&format!(
        "{total} match(es) across {} input(s); {} meta states, {threads} thread(s)\n",
        inputs.len(),
        re.meta_states()
    ));
    Ok(text)
}

/// `mscc batch`: compile `(name, source)` pairs over the engine's worker
/// pool; each file reports success or its own error. Returns the report
/// and the number of files that failed (so the driver can exit nonzero
/// on partial failure without losing the per-file lines).
pub fn execute_batch(
    sources: &[(String, String)],
    opts: &CommonOpts,
) -> Result<(String, usize), CliError> {
    let session = ObsSession::start(opts)?;
    let engine = engine_for(opts);
    let jobs: Vec<metastate::Job> = sources
        .iter()
        .map(|(name, src)| build_pipeline(src, opts).into_job(name.clone()))
        .collect();
    let results = engine.compile_many(&jobs);
    let mut text = String::new();
    let mut ok = 0usize;
    for (job, result) in jobs.iter().zip(&results) {
        match result {
            Ok(c) => {
                ok += 1;
                text.push_str(&format!(
                    "{}: ok, {} meta states, {} blocks ({})\n",
                    job.name,
                    c.artifact.meta_states,
                    c.artifact.simd.blocks.len(),
                    c.provenance
                ));
            }
            Err(e) => text.push_str(&format!("{}: error: {e}\n", job.name)),
        }
    }
    text.push_str(&format!(
        "\n{ok}/{} succeeded, {} threads",
        results.len(),
        engine.threads()
    ));
    if opts.stats {
        let c = engine.cache_stats();
        text.push_str(&format!(
            "; cache: {} memory hits, {} disk hits, {} peer hits, {} misses, {} coalesced",
            c.hits,
            c.disk_hits,
            c.peer_hits,
            c.misses,
            engine.coalesced()
        ));
    }
    text.push('\n');
    if let Some(session) = session {
        text.push_str(&session.finish()?);
    }
    Ok((text, results.len() - ok))
}

/// Execute a parsed command against source text, returning the output the
/// CLI prints. Separated from file I/O for testability. (`Batch` reads
/// many files, so it goes through [`execute_batch`] instead.)
pub fn execute_on_source(cmd: &Command, src: &str) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Batch { files, opts } => {
            // Testing convenience: every file gets the same source text.
            // (`execute_batch` owns the obs session for batches.)
            let sources: Vec<(String, String)> =
                files.iter().map(|f| (f.clone(), src.to_string())).collect();
            execute_batch(&sources, opts).map(|(text, _)| text)
        }
        Command::Serve { .. } => Err(CliError(
            "serve is a long-running daemon; it is driven by main_with_args".into(),
        )),
        Command::Fuzz { .. } => execute_fuzz(cmd),
        Command::Match {
            pattern, threads, ..
        } => {
            // Testing convenience: the source text is the one haystack.
            execute_match(
                pattern,
                &[("<input>".to_string(), src.as_bytes().to_vec())],
                *threads,
            )
        }
        Command::Sweep {
            file,
            profiles,
            opts,
        } => {
            let session = ObsSession::start(opts)?;
            let loaded = load_profiles(profiles)?;
            let mut text = execute_sweep(file, src, &loaded, opts)?;
            if let Some(session) = session {
                text.push_str(&session.finish()?);
            }
            Ok(text)
        }
        Command::Build { opts, .. } | Command::Run { opts, .. } => {
            let session = ObsSession::start(opts)?;
            let mut text = execute_build_or_run(cmd, src)?;
            if let Some(session) = session {
                text.push_str(&session.finish()?);
            }
            Ok(text)
        }
    }
}

/// The build/run arms of [`execute_on_source`], split out so the caller
/// can bracket them with an [`ObsSession`] and append the metrics table.
fn execute_build_or_run(cmd: &Command, src: &str) -> Result<String, CliError> {
    match cmd {
        Command::Build { file, emit, opts } => {
            if opts.wants_engine() {
                return execute_build_engine(file, emit, opts, src);
            }
            let built = classic_built(src, opts)?;
            Ok(match emit {
                Emit::Automaton => {
                    let mut out = built.automaton_text();
                    out.push_str(&format!(
                        "\n{} meta states, avg width {:.2}, max width {}\n",
                        built.automaton.len(),
                        built.automaton.avg_width(),
                        built.automaton.max_width()
                    ));
                    out
                }
                Emit::Mpl => built.mpl(),
                Emit::Dot => built.automaton.dot(),
                Emit::Graph => msc_ir::render::text(&built.compiled.graph, &CostModel::default()),
                Emit::Asm => msc_simd::serialize_asm(&built.simd),
            })
        }
        Command::Run {
            pes,
            pool,
            compare,
            trace,
            opts,
            ..
        } => {
            let built = build_pipeline(src, opts)
                .build()
                .map_err(|e| CliError(e.to_string()))?;
            let mut cfg = match pool {
                Some(live) => MachineConfig::with_pool(*pes, *live),
                None => MachineConfig::spmd(*pes),
            };
            cfg.trace = *trace;
            let out = built.run_with(cfg).map_err(|e| CliError(e.to_string()))?;
            let mut text = String::new();
            if let Some(ret) = built.ret_addr() {
                text.push_str("PE | result\n");
                for pe in 0..*pes {
                    text.push_str(&format!("{pe:2} | {}\n", out.machine.poly_at(pe, ret)));
                }
            }
            text.push_str(&format!(
                "\ncycles={} (body {}, guards {}, dispatch {}), issues={}, dispatches={}, utilization={:.1}%\n",
                out.metrics.cycles,
                out.metrics.body_cycles,
                out.metrics.guard_cycles,
                out.metrics.dispatch_cycles,
                out.metrics.issues,
                out.metrics.dispatches,
                out.metrics.utilization() * 100.0
            ));
            text.push_str(&format!(
                "automaton: {} meta states; per-PE program memory: 0 words\n",
                built.automaton.len()
            ));
            if *trace {
                text.push_str("\ntrace (meta-state path):\n");
                for ev in &out.machine.trace {
                    match ev {
                        msc_simd::TraceEvent::EnterBlock {
                            block,
                            live,
                            at_cycle,
                        } => {
                            text.push_str(&format!(
                                "  @{at_cycle:<6} enter {} (live PEs: {live})\n",
                                built.simd.block(*block).name
                            ));
                        }
                        msc_simd::TraceEvent::Dispatch { to: Some(t), .. } => {
                            text.push_str(&format!("          -> {}\n", built.simd.block(*t).name));
                        }
                        msc_simd::TraceEvent::Dispatch { to: None, .. } => {
                            text.push_str("          -> exit\n");
                        }
                    }
                }
            }
            if *compare {
                let p = msc_lang::compile(src).map_err(|e| CliError(e.to_string()))?;
                let mcfg = msc_mimd::MimdConfig::spmd(*pes);
                let mut mimd =
                    msc_mimd::MimdReference::new(p.layout.poly_words, p.layout.mono_words, &mcfg);
                let mm = mimd
                    .run(&p.graph, &mcfg)
                    .map_err(|e| CliError(e.to_string()))?;
                let (_, im) = msc_mimd::interpret_on_simd(
                    &p.graph,
                    p.layout.poly_words,
                    p.layout.mono_words,
                    *pes,
                    &CostModel::default(),
                )
                .map_err(|e| CliError(e.to_string()))?;
                text.push_str(&format!(
                    "\ncompare: MIMD reference {} cycles; interpreter {} cycles ({:.2}x vs MSC)\n",
                    mm.cycles,
                    im.cycles,
                    im.cycles as f64 / out.metrics.cycles as f64
                ));
                if let (Some(ret), Some(mret)) = (built.ret_addr(), p.layout.main_ret) {
                    let agree =
                        (0..*pes).all(|pe| out.machine.poly_at(pe, ret) == mimd.poly_at(pe, mret));
                    text.push_str(&format!(
                        "results {} the MIMD reference\n",
                        if agree { "MATCH" } else { "DIVERGE FROM" }
                    ));
                }
            }
            Ok(text)
        }
        Command::Help
        | Command::Batch { .. }
        | Command::Sweep { .. }
        | Command::Serve { .. }
        | Command::Fuzz { .. }
        | Command::Match { .. } => {
            unreachable!("handled by execute_on_source")
        }
    }
}

/// Full entry point: parse args, read the file(s), execute.
pub fn main_with_args(args: &[String]) -> Result<String, CliError> {
    let cmd = parse_args(args)?;
    let read = |file: &str| {
        std::fs::read_to_string(file).map_err(|e| CliError(format!("cannot read {file}: {e}")))
    };
    match &cmd {
        Command::Help => execute_on_source(&cmd, ""),
        Command::Serve {
            addr,
            workers,
            queue_depth,
            cache,
            max_meta_states,
            blocking,
            peers,
        } => {
            let defaults = msc_serve::ServeOptions::default();
            let force_blocking = *blocking;
            let handle = msc_serve::Server::start(msc_serve::ServeOptions {
                addr: addr.clone(),
                workers: *workers,
                queue_depth: *queue_depth,
                cache_dir: cache.as_ref().map(std::path::PathBuf::from),
                max_meta_states: max_meta_states.unwrap_or(defaults.max_meta_states),
                force_blocking,
                peers: peers.clone(),
                ..defaults
            })
            .map_err(|e| CliError(format!("cannot start daemon on {addr}: {e}")))?;
            // Announce before blocking so scripts can find the port.
            println!("msc-serve listening on {}", handle.local_addr());
            if !peers.is_empty() {
                println!("msc-serve peers: {}", peers.join(", "));
            }
            let core = if force_blocking || !msc_serve::reactor_available() {
                "blocking pool"
            } else {
                "epoll reactor"
            };
            println!("msc-serve core: {core}");
            msc_serve::run_until_signal(handle);
            Ok("msc-serve: drained and stopped\n".to_string())
        }
        Command::Batch { files, opts } => {
            let sources = files
                .iter()
                .map(|f| Ok((f.clone(), read(f)?)))
                .collect::<Result<Vec<_>, CliError>>()?;
            let (text, failed) = execute_batch(&sources, opts)?;
            if failed > 0 {
                // Per-file lines are in the report; fail the invocation so
                // scripts see the partial failure.
                return Err(CliError(format!("{failed} file(s) failed\n{text}")));
            }
            Ok(text)
        }
        Command::Fuzz { .. } => execute_fuzz(&cmd),
        Command::Match {
            pattern,
            files,
            threads,
        } => {
            let inputs: Vec<(String, Vec<u8>)> = if files.is_empty() {
                use std::io::Read as _;
                let mut buf = Vec::new();
                std::io::stdin()
                    .read_to_end(&mut buf)
                    .map_err(|e| CliError(format!("cannot read stdin: {e}")))?;
                vec![("<stdin>".to_string(), buf)]
            } else {
                files
                    .iter()
                    .map(|f| {
                        Ok((
                            f.clone(),
                            std::fs::read(f)
                                .map_err(|e| CliError(format!("cannot read {f}: {e}")))?,
                        ))
                    })
                    .collect::<Result<Vec<_>, CliError>>()?
            };
            execute_match(pattern, &inputs, *threads)
        }
        Command::Build { file, .. } | Command::Run { file, .. } | Command::Sweep { file, .. } => {
            execute_on_source(&cmd, &read(file)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const PROG: &str = "main() { poly int x; x = pe_id() * 2 + 1; return(x); }";

    #[test]
    fn parse_serve_flags() {
        let cmd = parse_args(&args(
            "serve --addr 127.0.0.1:0 --workers 2 --queue-depth 4 --cache /tmp/c --max-meta-states 512 --blocking",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_depth: 4,
                cache: Some("/tmp/c".into()),
                max_meta_states: Some(512),
                blocking: true,
                peers: Vec::new(),
            }
        );
        assert!(parse_args(&args("serve --max-meta-states 0")).is_err());
        assert!(parse_args(&args("serve --workers")).is_err());
        assert!(parse_args(&args("serve extra.mimdc")).is_err());
    }

    #[test]
    fn parse_serve_peers() {
        // An empty entry (doubled or trailing comma) is an error, not
        // a silently dropped peer.
        assert!(parse_args(&args("serve --peers 10.0.0.1:7643,,10.0.0.2:7643")).is_err());
        assert!(parse_args(&args("serve --peers 10.0.0.1:7643,")).is_err());
        let cmd = parse_args(&args(
            "serve --addr 127.0.0.1:0 --peers 10.0.0.1:7643,10.0.0.2:7643",
        ))
        .unwrap();
        let Command::Serve { peers, .. } = cmd else {
            panic!("expected serve command");
        };
        assert_eq!(peers, vec!["10.0.0.1:7643", "10.0.0.2:7643"]);
        assert!(parse_args(&args("serve --peers")).is_err());
    }

    #[test]
    fn parse_build_defaults() {
        let cmd = parse_args(&args("build foo.mimdc")).unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                file: "foo.mimdc".into(),
                emit: Emit::Automaton,
                opts: CommonOpts::default()
            }
        );
    }

    #[test]
    fn parse_run_with_flags() {
        let cmd = parse_args(&args(
            "run foo.mimdc --pes 32 --pool 4 --compare --mode compressed --time-split --optimize --minimize --no-csi",
        ))
        .unwrap();
        let Command::Run {
            pes,
            pool,
            compare,
            opts,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(pes, 32);
        assert_eq!(pool, Some(4));
        assert!(compare);
        assert_eq!(opts.mode, ConvertMode::Compressed);
        assert!(opts.time_split && opts.optimize && opts.minimize && opts.no_csi);
    }

    #[test]
    fn parse_sweep_flags() {
        let cmd = parse_args(&args("sweep foo.mimdc --profiles a.json,b.json")).unwrap();
        let Command::Sweep {
            file,
            profiles,
            opts,
        } = cmd
        else {
            panic!("expected sweep command");
        };
        assert_eq!(file, "foo.mimdc");
        assert_eq!(profiles, vec!["a.json", "b.json"]);
        // Sweep defaults to the engine pool (all cores) unless --jobs
        // was given explicitly.
        assert_eq!(opts.jobs, 0);
        let cmd = parse_args(&args("sweep foo.mimdc --jobs 2")).unwrap();
        let Command::Sweep { profiles, opts, .. } = cmd else {
            panic!("expected sweep command");
        };
        assert!(profiles.is_empty());
        assert_eq!(opts.jobs, 2);
        // --profiles is a sweep flag, not a build/run flag.
        assert!(parse_args(&args("build foo.mimdc --profiles a.json")).is_err());
        assert!(parse_args(&args("sweep foo.mimdc --profiles")).is_err());
        assert!(parse_args(&args("sweep")).is_err());
    }

    #[test]
    fn parse_guard_and_budget_flags() {
        let cmd = parse_args(&args(
            "build foo.mimdc --max-meta-states 4096 --memory-budget 64m",
        ))
        .unwrap();
        let Command::Build { opts, .. } = cmd else {
            panic!()
        };
        assert_eq!(opts.max_meta_states, Some(4096));
        assert_eq!(opts.memory_budget, Some(64 << 20));
        assert!(parse_args(&args("build foo.mimdc --max-meta-states 0")).is_err());
        assert!(parse_args(&args("build foo.mimdc --memory-budget banana")).is_err());
    }

    #[test]
    fn parse_rejects_unknowns() {
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("build foo --emit nonsense")).is_err());
        assert!(parse_args(&args("run --pes banana foo")).is_err());
        assert!(parse_args(&args("build")).is_err());
    }

    #[test]
    fn help_works() {
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert!(execute_on_source(&Command::Help, "")
            .unwrap()
            .contains("USAGE"));
    }

    #[test]
    fn build_emits_each_kind() {
        for (emit, needle) in [
            (Emit::Automaton, "meta states"),
            (Emit::Mpl, "ms_"),
            (Emit::Dot, "digraph"),
            (Emit::Graph, "-> "),
            (Emit::Asm, ".program start=mb"),
        ] {
            let cmd = Command::Build {
                file: "x".into(),
                emit,
                opts: CommonOpts::default(),
            };
            let out = execute_on_source(&cmd, PROG).unwrap();
            assert!(out.contains(needle), "{emit:?}: {out}");
        }
    }

    #[test]
    fn run_prints_results_and_metrics() {
        let cmd = Command::Run {
            file: "x".into(),
            pes: 4,
            pool: None,
            compare: true,
            trace: false,
            opts: CommonOpts::default(),
        };
        let out = execute_on_source(&cmd, PROG).unwrap();
        assert!(out.contains(" 3 | 7"), "{out}");
        assert!(out.contains("cycles="), "{out}");
        assert!(out.contains("results MATCH"), "{out}");
    }

    #[test]
    fn run_with_optimizer_flags_matches_plain() {
        let plain = Command::Run {
            file: "x".into(),
            pes: 4,
            pool: None,
            compare: false,
            trace: false,
            opts: CommonOpts::default(),
        };
        let opt = Command::Run {
            file: "x".into(),
            pes: 4,
            pool: None,
            compare: false,
            trace: false,
            opts: CommonOpts {
                optimize: true,
                minimize: true,
                ..CommonOpts::default()
            },
        };
        let a = execute_on_source(&plain, PROG).unwrap();
        let b = execute_on_source(&opt, PROG).unwrap();
        let results = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains(" | "))
                .map(String::from)
                .collect()
        };
        assert_eq!(results(&a), results(&b));
    }

    #[test]
    fn parse_engine_flags() {
        let cmd = parse_args(&args("build foo.mimdc --jobs 8 --cache /tmp/c --stats")).unwrap();
        let Command::Build { opts, .. } = cmd else {
            panic!()
        };
        assert_eq!(opts.jobs, 8);
        assert_eq!(opts.cache.as_deref(), Some("/tmp/c"));
        assert!(opts.stats);
        assert!(opts.wants_engine());
        assert!(!CommonOpts::default().wants_engine());
    }

    #[test]
    fn parse_batch_collects_files() {
        let cmd = parse_args(&args("batch a.mimdc b.mimdc c.mimdc --jobs 2")).unwrap();
        let Command::Batch { files, opts } = cmd else {
            panic!()
        };
        assert_eq!(files, vec!["a.mimdc", "b.mimdc", "c.mimdc"]);
        assert_eq!(opts.jobs, 2);
        assert!(
            parse_args(&args("batch")).is_err(),
            "batch needs at least one file"
        );
        assert!(
            parse_args(&args("build a.mimdc b.mimdc")).is_err(),
            "build takes exactly one file"
        );
    }

    #[test]
    fn parse_match_command() {
        let cmd = parse_args(&args("match a+b in1.txt in2.txt --threads 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Match {
                pattern: "a+b".into(),
                files: vec!["in1.txt".into(), "in2.txt".into()],
                threads: 3,
            }
        );
        assert!(parse_args(&args("match")).is_err(), "pattern is required");
        assert!(parse_args(&args("match a --threads")).is_err());
        assert!(parse_args(&args("match a --threads zero")).is_err());
        // A leading-dash token in pattern position is pattern text.
        let cmd = parse_args(&args("match -+")).unwrap();
        assert_eq!(
            cmd,
            Command::Match {
                pattern: "-+".into(),
                files: vec![],
                threads: 0,
            }
        );
    }

    #[test]
    fn match_prints_spans_and_summary() {
        let out = execute_match("ab+", &[("x".into(), b"xabbyab".to_vec())], 2).unwrap();
        assert!(out.contains("x:1..4: abb"), "{out}");
        assert!(out.contains("x:5..7: ab"), "{out}");
        assert!(out.contains("2 match(es)"), "{out}");
        let err = execute_match("a(", &[], 1).unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
        // Through execute_on_source the source text is the haystack.
        let cmd = parse_args(&args("match b+")).unwrap();
        let out = execute_on_source(&cmd, "abbba").unwrap();
        assert!(out.contains("<input>:1..4: bbb"), "{out}");
    }

    #[test]
    fn match_spans_are_thread_count_invariant() {
        let hay = b"abcabcxx\nabc".repeat(50);
        let spans = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains(".."))
                .map(String::from)
                .collect()
        };
        let one = execute_match("ab*c", &[("h".into(), hay.clone())], 1).unwrap();
        for t in [2, 3, 8] {
            let more = execute_match("ab*c", &[("h".into(), hay.clone())], t).unwrap();
            assert_eq!(spans(&one), spans(&more), "threads={t}");
        }
    }

    #[test]
    fn build_stats_block() {
        let cmd = Command::Build {
            file: "x".into(),
            emit: Emit::Automaton,
            opts: CommonOpts {
                stats: true,
                jobs: 2,
                ..CommonOpts::default()
            },
        };
        let out = execute_on_source(&cmd, PROG).unwrap();
        assert!(out.contains("-- stats --"), "{out}");
        assert!(out.contains("provenance: fresh compile"), "{out}");
        assert!(out.contains("timings: compile"), "{out}");
        assert!(out.contains("cache: 0 memory hits"), "{out}");
        assert!(out.contains("meta states"), "{out}");
    }

    #[test]
    fn build_engine_emits_each_kind() {
        // All emit kinds work through the engine route too.
        for (emit, needle) in [
            (Emit::Automaton, "meta states"),
            (Emit::Mpl, "ms_"),
            (Emit::Dot, "digraph"),
            (Emit::Graph, "-> "),
            (Emit::Asm, ".program start=mb"),
        ] {
            let cmd = Command::Build {
                file: "x".into(),
                emit,
                opts: CommonOpts {
                    jobs: 2,
                    ..CommonOpts::default()
                },
            };
            let out = execute_on_source(&cmd, PROG).unwrap();
            assert!(out.contains(needle), "{emit:?}: {out}");
        }
    }

    #[test]
    fn build_engine_output_matches_classic() {
        // The engine canonicalizes the automaton; for this straight-line
        // program the classic numbering is already canonical, so the
        // automaton text must agree exactly.
        let classic = Command::Build {
            file: "x".into(),
            emit: Emit::Automaton,
            opts: CommonOpts::default(),
        };
        let engine = Command::Build {
            file: "x".into(),
            emit: Emit::Automaton,
            opts: CommonOpts {
                jobs: 4,
                ..CommonOpts::default()
            },
        };
        assert_eq!(
            execute_on_source(&classic, PROG).unwrap(),
            execute_on_source(&engine, PROG).unwrap()
        );
    }

    #[test]
    fn repeated_cached_build_reports_disk_hit() {
        let dir = std::env::temp_dir().join(format!("mscc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CommonOpts {
            cache: Some(dir.to_string_lossy().into_owned()),
            stats: true,
            ..CommonOpts::default()
        };
        let cmd = Command::Build {
            file: "x".into(),
            emit: Emit::Automaton,
            opts,
        };
        // First invocation compiles and persists; each call builds a fresh
        // engine (as separate mscc processes would), so the second can only
        // be satisfied by the disk layer.
        let first = execute_on_source(&cmd, PROG).unwrap();
        assert!(first.contains("provenance: fresh compile"), "{first}");
        let second = execute_on_source(&cmd, PROG).unwrap();
        assert!(second.contains("provenance: cache hit (disk)"), "{second}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_reports_per_file_outcomes() {
        let good = "main() { poly int x; x = pe_id(); return(x); }";
        let bad = "main() { y = 1; }";
        let sources = vec![
            ("a.mimdc".to_string(), good.to_string()),
            ("broken.mimdc".to_string(), bad.to_string()),
            ("c.mimdc".to_string(), good.to_string()),
        ];
        // jobs: 1 keeps the pool sequential so the cache hit on the
        // repeated source is deterministic (still the engine route).
        let opts = CommonOpts {
            jobs: 1,
            stats: true,
            ..CommonOpts::default()
        };
        let (out, failed) = execute_batch(&sources, &opts).unwrap();
        assert_eq!(failed, 1, "{out}");
        assert!(out.contains("a.mimdc: ok"), "{out}");
        assert!(out.contains("broken.mimdc: error: compile:"), "{out}");
        assert!(out.contains("c.mimdc: ok"), "{out}");
        assert!(out.contains("2/3 succeeded"), "{out}");
        // a and c share source + options: the second must hit the cache.
        assert!(
            out.contains("cache hit (memory)") || out.contains("1 memory hits"),
            "{out}"
        );
    }

    #[test]
    fn compile_errors_surface() {
        let cmd = Command::Build {
            file: "x".into(),
            emit: Emit::Automaton,
            opts: CommonOpts::default(),
        };
        let err = execute_on_source(&cmd, "main() { y = 1; }").unwrap_err();
        assert!(err.0.contains("undeclared"), "{err}");
    }

    #[test]
    fn parse_obs_flags() {
        let cmd = parse_args(&args("build foo.mimdc --metrics --trace-out t.jsonl")).unwrap();
        let Command::Build { opts, .. } = cmd else {
            panic!()
        };
        assert!(opts.metrics);
        assert_eq!(opts.trace_out.as_deref(), Some("t.jsonl"));
        assert!(parse_args(&args("build foo.mimdc --trace-out")).is_err());
    }

    #[test]
    fn metrics_flag_appends_table() {
        let cmd = parse_args(&args("build foo.mimdc --metrics")).unwrap();
        let out = execute_on_source(&cmd, PROG).unwrap();
        // The classic build path runs instrumented conversion, so the
        // summary table must show at least the conversion span.
        assert!(out.contains("-- metrics --"), "{out}");
        assert!(out.contains("convert.run"), "{out}");
        // Without the flag no table appears.
        let cmd = parse_args(&args("build foo.mimdc")).unwrap();
        let out = execute_on_source(&cmd, PROG).unwrap();
        assert!(!out.contains("-- metrics --"), "{out}");
    }

    #[test]
    fn batch_metrics_table_covers_cache_and_convert() {
        // --jobs 1 keeps the two identical compiles serial: concurrent
        // identical jobs may coalesce onto one flight instead of hitting
        // the cache, which made this assertion racy under --jobs 2.
        let cmd = parse_args(&args("batch a.mimdc b.mimdc --jobs 1 --metrics")).unwrap();
        let out = execute_on_source(&cmd, PROG).unwrap();
        assert!(out.contains("-- metrics --"), "{out}");
        // Identical sources: the first compile misses, the second hits.
        assert!(out.contains("cache.hit"), "{out}");
        assert!(out.contains("cache.miss"), "{out}");
        assert!(out.contains("convert.run"), "{out}");
    }

    #[test]
    fn parse_fuzz_flags() {
        let cmd = parse_args(&args(
            "fuzz --seed 9 --cases 50 --pes 3 --max-states 500 --corpus /tmp/corp --oracles base,engine:2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Fuzz {
                seed: 9,
                cases: 50,
                pes: 3,
                max_states: 500,
                corpus: Some("/tmp/corp".into()),
                oracles: Some("base,engine:2".into()),
                serve: false,
                serve_addr: None,
                replay: None,
                trace_out: None,
                metrics: false,
            }
        );
        assert!(parse_args(&args("fuzz --cases")).is_err());
        assert!(parse_args(&args("fuzz --pes 0")).is_err());
        assert!(parse_args(&args("fuzz --seed banana")).is_err());
        assert!(parse_args(&args("fuzz prog.mimdc")).is_err());
        // The in-process daemon owns the obs registry for its lifetime.
        assert!(parse_args(&args("fuzz --serve --metrics")).is_err());
        assert!(parse_args(&args("fuzz --serve-addr 127.0.0.1:1 --metrics")).is_ok());
    }

    #[test]
    fn fuzz_clean_run_emits_json_summary() {
        let cmd = parse_args(&args("fuzz --seed 3 --cases 2 --oracles interp,base")).unwrap();
        let out = execute_on_source(&cmd, "").unwrap();
        let last = out.lines().rev().find(|l| !l.is_empty()).unwrap();
        let v = msc_obs::json::parse(last).unwrap();
        assert_eq!(v.get("cases").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("mismatches").unwrap().as_u64(), Some(0));
        assert!(v.get("ok").unwrap().as_bool().unwrap());
    }

    #[test]
    fn fuzz_mismatch_exits_nonzero_with_reproducer() {
        let dir = std::env::temp_dir().join(format!("mscc-fuzz-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = parse_args(&args(&format!(
            "fuzz --seed 1 --cases 20 --oracles selftest --corpus {}",
            dir.display()
        )))
        .unwrap();
        let err = execute_on_source(&cmd, "").unwrap_err();
        assert!(err.0.contains("mismatch(es) found"), "{err}");
        assert!(err.0.contains("reproducer: "), "{err}");
        assert!(err.0.contains("\"ok\":false"), "{err}");
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert!(entries > 0, "corpus directory is empty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzz_bad_oracle_list_is_rejected() {
        let cmd = parse_args(&args("fuzz --oracles base,warp-drive")).unwrap();
        let err = execute_on_source(&cmd, "").unwrap_err();
        assert!(err.0.contains("unknown oracle"), "{err}");
    }

    #[test]
    fn trace_out_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!("mscc_trace_{}.jsonl", std::process::id()));
        let cmd = parse_args(&args(&format!(
            "build foo.mimdc --trace-out {}",
            path.display()
        )))
        .unwrap();
        let out = execute_on_source(&cmd, PROG).unwrap();
        assert!(!out.contains("-- metrics --"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let mut parsed = 0usize;
        for line in text.lines() {
            assert!(
                msc_obs::jsonl::parse_line(line).is_some(),
                "unparseable trace line: {line}"
            );
            parsed += 1;
        }
        assert!(parsed > 0, "trace file is empty");
        std::fs::remove_file(&path).ok();
    }
}
