//! # msc-cli — the `mscc` command-line driver
//!
//! ```text
//! mscc build prog.mimdc --emit automaton      # print the meta-state graph
//! mscc build prog.mimdc --emit mpl            # Listing-5-style SIMD code
//! mscc build prog.mimdc --emit dot            # Graphviz of the automaton
//! mscc build prog.mimdc --emit graph          # the MIMD state graph
//! mscc run   prog.mimdc --pes 16              # execute and print results
//! mscc run   prog.mimdc --compare             # also run MIMD ref + interpreter
//! ```
//!
//! Shared flags: `--mode base|compressed`, `--time-split`, `--optimize`,
//! `--minimize`, `--no-csi`, `--pes N`, `--pool N` (live PEs, rest idle).
//!
//! The argument parser and command execution live in this library so they
//! are unit-testable; `main.rs` is a thin shell.

use metastate::{ConvertMode, Pipeline, TimeSplitOptions};
use msc_ir::CostModel;
use msc_simd::MachineConfig;
use std::fmt;

/// What `mscc build --emit` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// The meta-state automaton as text.
    Automaton,
    /// MPL-like SIMD code (Listing 5 style).
    Mpl,
    /// Graphviz of the automaton.
    Dot,
    /// The MIMD state graph as text.
    Graph,
    /// Reloadable SIMD assembly (see `msc_simd::asm`).
    Asm,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mscc build FILE`.
    Build {
        /// Source path.
        file: String,
        /// What to print.
        emit: Emit,
        /// Common options.
        opts: CommonOpts,
    },
    /// `mscc run FILE`.
    Run {
        /// Source path.
        file: String,
        /// PEs to simulate.
        pes: usize,
        /// Live PEs at start (None = all; Some(n) leaves a spawn pool).
        pool: Option<usize>,
        /// Also run the MIMD reference and interpreter and compare.
        compare: bool,
        /// Print the meta-state execution trace.
        trace: bool,
        /// Common options.
        opts: CommonOpts,
    },
    /// `mscc help` / `-h` / `--help`.
    Help,
}

/// Options shared by build and run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonOpts {
    /// Conversion mode.
    pub mode: ConvertMode,
    /// §2.4 time splitting.
    pub time_split: bool,
    /// Peephole optimization.
    pub optimize: bool,
    /// Bisimulation minimization.
    pub minimize: bool,
    /// Disable CSI in codegen.
    pub no_csi: bool,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts {
            mode: ConvertMode::Base,
            time_split: false,
            optimize: false,
            minimize: false,
            no_csi: false,
        }
    }
}

/// CLI failures (parse or execution).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
mscc — Meta-State Conversion compiler driver

USAGE:
  mscc build <FILE> [--emit automaton|mpl|dot|graph|asm] [common flags]
  mscc run   <FILE> [--pes N] [--pool N] [--compare] [--trace] [common flags]
  mscc help

COMMON FLAGS:
  --mode base|compressed   conversion mode (default: base)
  --time-split             enable §2.4 time splitting
  --optimize               peephole-optimize blocks first
  --minimize               merge bisimilar MIMD states first
  --no-csi                 disable common subexpression induction
";

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(|| CliError(USAGE.into()))?;
    match cmd.as_str() {
        "help" | "-h" | "--help" => Ok(Command::Help),
        "build" | "run" => {
            let mut file: Option<String> = None;
            let mut emit = Emit::Automaton;
            let mut pes = 8usize;
            let mut pool: Option<usize> = None;
            let mut compare = false;
            let mut trace = false;
            let mut opts = CommonOpts::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--emit" => {
                        let v = it.next().ok_or_else(|| CliError("--emit needs a value".into()))?;
                        emit = match v.as_str() {
                            "automaton" => Emit::Automaton,
                            "mpl" => Emit::Mpl,
                            "dot" => Emit::Dot,
                            "graph" => Emit::Graph,
                            "asm" => Emit::Asm,
                            other => {
                                return Err(CliError(format!("unknown emit kind `{other}`")))
                            }
                        };
                    }
                    "--mode" => {
                        let v = it.next().ok_or_else(|| CliError("--mode needs a value".into()))?;
                        opts.mode = match v.as_str() {
                            "base" => ConvertMode::Base,
                            "compressed" => ConvertMode::Compressed,
                            other => return Err(CliError(format!("unknown mode `{other}`"))),
                        };
                    }
                    "--pes" => {
                        let v = it.next().ok_or_else(|| CliError("--pes needs a value".into()))?;
                        pes = v
                            .parse()
                            .map_err(|_| CliError(format!("bad PE count `{v}`")))?;
                    }
                    "--pool" => {
                        let v = it.next().ok_or_else(|| CliError("--pool needs a value".into()))?;
                        pool = Some(
                            v.parse().map_err(|_| CliError(format!("bad pool count `{v}`")))?,
                        );
                    }
                    "--time-split" => opts.time_split = true,
                    "--optimize" => opts.optimize = true,
                    "--minimize" => opts.minimize = true,
                    "--no-csi" => opts.no_csi = true,
                    "--compare" => compare = true,
                    "--trace" => trace = true,
                    other if !other.starts_with('-') && file.is_none() => {
                        file = Some(other.to_string());
                    }
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            let file = file.ok_or_else(|| CliError("missing input file".into()))?;
            Ok(if cmd == "build" {
                Command::Build { file, emit, opts }
            } else {
                Command::Run { file, pes, pool, compare, trace, opts }
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn build_pipeline(src: &str, opts: &CommonOpts) -> Pipeline {
    let mut p = Pipeline::new(src).mode(opts.mode);
    if opts.time_split {
        p = p.time_split(TimeSplitOptions::default());
    }
    if opts.optimize {
        p = p.optimize();
    }
    if opts.minimize {
        p = p.minimize();
    }
    if opts.no_csi {
        p = p.gen_options(metastate::GenOptions { csi: false, ..Default::default() });
    }
    p
}

/// Execute a parsed command against source text, returning the output the
/// CLI prints. Separated from file I/O for testability.
pub fn execute_on_source(cmd: &Command, src: &str) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Build { emit, opts, .. } => {
            let built = build_pipeline(src, opts)
                .build()
                .map_err(|e| CliError(e.to_string()))?;
            Ok(match emit {
                Emit::Automaton => {
                    let mut out = built.automaton_text();
                    out.push_str(&format!(
                        "\n{} meta states, avg width {:.2}, max width {}\n",
                        built.automaton.len(),
                        built.automaton.avg_width(),
                        built.automaton.max_width()
                    ));
                    out
                }
                Emit::Mpl => built.mpl(),
                Emit::Dot => built.automaton.dot(),
                Emit::Graph => {
                    msc_ir::render::text(&built.compiled.graph, &CostModel::default())
                }
                Emit::Asm => msc_simd::serialize_asm(&built.simd),
            })
        }
        Command::Run { pes, pool, compare, trace, opts, .. } => {
            let built = build_pipeline(src, opts)
                .build()
                .map_err(|e| CliError(e.to_string()))?;
            let mut cfg = match pool {
                Some(live) => MachineConfig::with_pool(*pes, *live),
                None => MachineConfig::spmd(*pes),
            };
            cfg.trace = *trace;
            let out = built.run_with(cfg).map_err(|e| CliError(e.to_string()))?;
            let mut text = String::new();
            if let Some(ret) = built.ret_addr() {
                text.push_str("PE | result\n");
                for pe in 0..*pes {
                    text.push_str(&format!("{pe:2} | {}\n", out.machine.poly_at(pe, ret)));
                }
            }
            text.push_str(&format!(
                "\ncycles={} (body {}, guards {}, dispatch {}), issues={}, dispatches={}, utilization={:.1}%\n",
                out.metrics.cycles,
                out.metrics.body_cycles,
                out.metrics.guard_cycles,
                out.metrics.dispatch_cycles,
                out.metrics.issues,
                out.metrics.dispatches,
                out.metrics.utilization() * 100.0
            ));
            text.push_str(&format!(
                "automaton: {} meta states; per-PE program memory: 0 words\n",
                built.automaton.len()
            ));
            if *trace {
                text.push_str("\ntrace (meta-state path):\n");
                for ev in &out.machine.trace {
                    match ev {
                        msc_simd::TraceEvent::EnterBlock { block, live, at_cycle } => {
                            text.push_str(&format!(
                                "  @{at_cycle:<6} enter {} (live PEs: {live})\n",
                                built.simd.block(*block).name
                            ));
                        }
                        msc_simd::TraceEvent::Dispatch { to: Some(t), .. } => {
                            text.push_str(&format!(
                                "          -> {}\n",
                                built.simd.block(*t).name
                            ));
                        }
                        msc_simd::TraceEvent::Dispatch { to: None, .. } => {
                            text.push_str("          -> exit\n");
                        }
                    }
                }
            }
            if *compare {
                let p = msc_lang::compile(src).map_err(|e| CliError(e.to_string()))?;
                let mcfg = msc_mimd::MimdConfig::spmd(*pes);
                let mut mimd = msc_mimd::MimdReference::new(
                    p.layout.poly_words,
                    p.layout.mono_words,
                    &mcfg,
                );
                let mm = mimd.run(&p.graph, &mcfg).map_err(|e| CliError(e.to_string()))?;
                let (_, im) = msc_mimd::interpret_on_simd(
                    &p.graph,
                    p.layout.poly_words,
                    p.layout.mono_words,
                    *pes,
                    &CostModel::default(),
                )
                .map_err(|e| CliError(e.to_string()))?;
                text.push_str(&format!(
                    "\ncompare: MIMD reference {} cycles; interpreter {} cycles ({:.2}x vs MSC)\n",
                    mm.cycles,
                    im.cycles,
                    im.cycles as f64 / out.metrics.cycles as f64
                ));
                if let (Some(ret), Some(mret)) = (built.ret_addr(), p.layout.main_ret) {
                    let agree = (0..*pes)
                        .all(|pe| out.machine.poly_at(pe, ret) == mimd.poly_at(pe, mret));
                    text.push_str(&format!(
                        "results {} the MIMD reference\n",
                        if agree { "MATCH" } else { "DIVERGE FROM" }
                    ));
                }
            }
            Ok(text)
        }
    }
}

/// Full entry point: parse args, read the file, execute.
pub fn main_with_args(args: &[String]) -> Result<String, CliError> {
    let cmd = parse_args(args)?;
    let src = match &cmd {
        Command::Help => String::new(),
        Command::Build { file, .. } | Command::Run { file, .. } => std::fs::read_to_string(file)
            .map_err(|e| CliError(format!("cannot read {file}: {e}")))?,
    };
    execute_on_source(&cmd, &src)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const PROG: &str = "main() { poly int x; x = pe_id() * 2 + 1; return(x); }";

    #[test]
    fn parse_build_defaults() {
        let cmd = parse_args(&args("build foo.mimdc")).unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                file: "foo.mimdc".into(),
                emit: Emit::Automaton,
                opts: CommonOpts::default()
            }
        );
    }

    #[test]
    fn parse_run_with_flags() {
        let cmd = parse_args(&args(
            "run foo.mimdc --pes 32 --pool 4 --compare --mode compressed --time-split --optimize --minimize --no-csi",
        ))
        .unwrap();
        let Command::Run { pes, pool, compare, opts, .. } = cmd else { panic!() };
        assert_eq!(pes, 32);
        assert_eq!(pool, Some(4));
        assert!(compare);
        assert_eq!(opts.mode, ConvertMode::Compressed);
        assert!(opts.time_split && opts.optimize && opts.minimize && opts.no_csi);
    }

    #[test]
    fn parse_rejects_unknowns() {
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("build foo --emit nonsense")).is_err());
        assert!(parse_args(&args("run --pes banana foo")).is_err());
        assert!(parse_args(&args("build")).is_err());
    }

    #[test]
    fn help_works() {
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert!(execute_on_source(&Command::Help, "").unwrap().contains("USAGE"));
    }

    #[test]
    fn build_emits_each_kind() {
        for (emit, needle) in [
            (Emit::Automaton, "meta states"),
            (Emit::Mpl, "ms_"),
            (Emit::Dot, "digraph"),
            (Emit::Graph, "-> "),
            (Emit::Asm, ".program start=mb"),
        ] {
            let cmd = Command::Build {
                file: "x".into(),
                emit,
                opts: CommonOpts::default(),
            };
            let out = execute_on_source(&cmd, PROG).unwrap();
            assert!(out.contains(needle), "{emit:?}: {out}");
        }
    }

    #[test]
    fn run_prints_results_and_metrics() {
        let cmd = Command::Run {
            file: "x".into(),
            pes: 4,
            pool: None,
            compare: true,
            trace: false,
            opts: CommonOpts::default(),
        };
        let out = execute_on_source(&cmd, PROG).unwrap();
        assert!(out.contains(" 3 | 7"), "{out}");
        assert!(out.contains("cycles="), "{out}");
        assert!(out.contains("results MATCH"), "{out}");
    }

    #[test]
    fn run_with_optimizer_flags_matches_plain() {
        let plain = Command::Run {
            file: "x".into(),
            pes: 4,
            pool: None,
            compare: false,
            trace: false,
            opts: CommonOpts::default(),
        };
        let opt = Command::Run {
            file: "x".into(),
            pes: 4,
            pool: None,
            compare: false,
            trace: false,
            opts: CommonOpts {
                optimize: true,
                minimize: true,
                ..CommonOpts::default()
            },
        };
        let a = execute_on_source(&plain, PROG).unwrap();
        let b = execute_on_source(&opt, PROG).unwrap();
        let results = |s: &str| -> Vec<String> {
            s.lines().filter(|l| l.contains(" | ")).map(String::from).collect()
        };
        assert_eq!(results(&a), results(&b));
    }

    #[test]
    fn compile_errors_surface() {
        let cmd = Command::Build {
            file: "x".into(),
            emit: Emit::Automaton,
            opts: CommonOpts::default(),
        };
        let err = execute_on_source(&cmd, "main() { y = 1; }").unwrap_err();
        assert!(err.0.contains("undeclared"), "{err}");
    }
}
