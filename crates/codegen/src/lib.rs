//! # msc-codegen — SIMD coding of the meta-state automaton (§3)
//!
//! "Given a MIMD program that has been converted into a meta-state graph,
//! it is not trivial to find an efficient coding of the meta-state
//! automaton for a SIMD architecture."
//!
//! [`generate`] turns a [`MetaAutomaton`] into an executable
//! [`SimdProgram`]:
//!
//! * each meta state's member bodies become **threads** fed to common
//!   subexpression induction (§3.1, `msc-csi`), producing one guarded
//!   instruction stream in which work shared between members issues once;
//! * member terminators become guarded control instructions (`JumpF`,
//!   `SetPc`, `Halt`, `RetMulti`, `Spawn`), merged when identical;
//! * each multi-successor meta state gets a **hashed multiway dispatch**
//!   (§3.2.3, `msc-hash`) over the `globalor` aggregate of `pc` bits, with
//!   the §3.2.4 barrier adjustment; single-successor states dispatch
//!   directly (§3.2.2), and the compressed-with-barrier pattern becomes a
//!   two-way direct/barrier check;
//! * [`render_mpl`](render::render_mpl) prints the whole program in the
//!   MPL-like style of the paper's Listing 5.

pub mod render;

use msc_core::{MetaAutomaton, MetaId};
use msc_csi::{CsiError, CsiOptions};
use msc_hash::{HashError, SearchOptions};
use msc_ir::{CostModel, Op, StateId, Terminator};
use msc_simd::{BlockId, Dispatch, GuardedInstr, MetaBlock, SimdInstr, SimdProgram};
use std::fmt;

/// Options controlling code generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Run common subexpression induction on meta-state bodies (§3.1).
    /// When false, member threads are serialized — the no-CSI baseline the
    /// experiments compare against.
    pub csi: bool,
    /// Cycle cost model (drives CSI's schedule costing and is embedded in
    /// the program for the simulator).
    pub costs: CostModel,
    /// Perfect-hash search bounds for the multiway dispatches.
    pub hash_search: SearchOptions,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            csi: true,
            costs: CostModel::default(),
            hash_search: SearchOptions::default(),
        }
    }
}

impl GenOptions {
    /// Options priced by a machine profile: CSI scheduling and dispatch
    /// accounting use the profile's per-class costs, so the generated
    /// program is costed for the machine it will run on (`mscc sweep`).
    pub fn for_profile(profile: &msc_simd::MachineProfile) -> Self {
        GenOptions {
            costs: profile.costs.clone(),
            ..GenOptions::default()
        }
    }
}

/// Code-generation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// A dispatch needed aggregate bits for more than 64 distinct states.
    TooManyDispatchStates {
        /// The meta state.
        meta: MetaId,
        /// Distinct states needing bits.
        states: usize,
    },
    /// The perfect-hash search failed for a dispatch.
    Hash(HashError),
    /// CSI failed (more than 64 members in one meta state).
    Csi(CsiError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::TooManyDispatchStates { meta, states } => {
                write!(
                    f,
                    "dispatch at {meta} needs {states} aggregate bits (max 64)"
                )
            }
            GenError::Hash(e) => write!(f, "multiway branch encoding failed: {e}"),
            GenError::Csi(e) => write!(f, "common subexpression induction failed: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<HashError> for GenError {
    fn from(e: HashError) -> Self {
        GenError::Hash(e)
    }
}

impl From<CsiError> for GenError {
    fn from(e: CsiError) -> Self {
        GenError::Csi(e)
    }
}

/// Listing-5-style meta state name: `ms_2_6_9` for members {2,6,9}.
pub fn meta_name(members: &[StateId]) -> String {
    let mut s = String::from("ms");
    for m in members {
        s.push('_');
        s.push_str(&m.0.to_string());
    }
    s
}

/// Generate an executable SIMD program from a converted automaton.
///
/// `poly_words`/`mono_words` give the memory image sizes (from the front
/// end's `msc_lang::Layout` when compiling MIMDC, or whatever the
/// caller allocated for hand-built graphs).
pub fn generate(
    auto: &MetaAutomaton,
    poly_words: u32,
    mono_words: u32,
    opts: &GenOptions,
) -> Result<SimdProgram, GenError> {
    let graph = &auto.graph;
    let mut blocks = Vec::with_capacity(auto.len());

    for (mi, set) in auto.sets.iter().enumerate() {
        let meta = MetaId(mi as u32);
        let members: Vec<StateId> = set.iter().collect();

        // §3.1: the member bodies are the threads of a CSI problem.
        let threads: Vec<Vec<Op>> = members
            .iter()
            .map(|&m| graph.state(m).ops.clone())
            .collect();
        let mut body: Vec<GuardedInstr> = Vec::new();
        if opts.csi {
            let schedule = msc_csi::induce_with(
                &threads,
                &CsiOptions {
                    costs: opts.costs.clone(),
                    ..Default::default()
                },
            )?;
            for slot in schedule.slots {
                let guard: Vec<StateId> = members
                    .iter()
                    .enumerate()
                    .filter(|(t, _)| slot.active & (1 << t) != 0)
                    .map(|(_, &m)| m)
                    .collect();
                body.push(GuardedInstr {
                    guard,
                    instr: SimdInstr::Op(slot.op),
                });
            }
        } else {
            for (t, thread) in threads.iter().enumerate() {
                for op in thread {
                    body.push(GuardedInstr {
                        guard: vec![members[t]],
                        instr: SimdInstr::Op(op.clone()),
                    });
                }
            }
        }

        // Member terminators, merged when identical (e.g. several members
        // halting share one guarded Halt).
        let mut term_instrs: Vec<(SimdInstr, Vec<StateId>)> = Vec::new();
        for &m in &members {
            let instr = match &graph.state(m).term {
                Terminator::Halt => SimdInstr::Halt,
                Terminator::Jump(b) => SimdInstr::SetPc(*b),
                Terminator::Branch { t, f } => SimdInstr::JumpF { t: *t, f: *f },
                Terminator::Multi(v) => SimdInstr::RetMulti(v.clone()),
                Terminator::Spawn { child, next } => SimdInstr::Spawn {
                    child: *child,
                    next: *next,
                },
            };
            if let Some(entry) = term_instrs.iter_mut().find(|(i, _)| *i == instr) {
                entry.1.push(m);
            } else {
                term_instrs.push((instr, vec![m]));
            }
        }
        for (instr, mut guard) in term_instrs {
            guard.sort_unstable();
            body.push(GuardedInstr { guard, instr });
        }

        let dispatch = build_dispatch(auto, meta, opts)?;
        blocks.push(MetaBlock {
            members: members.clone(),
            name: meta_name(&members),
            body,
            dispatch,
        });
    }

    let program = SimdProgram {
        blocks,
        start: BlockId(auto.start.0),
        start_state: graph.start,
        poly_words,
        mono_words,
        costs: opts.costs.clone(),
    };
    debug_assert_eq!(program.validate(), Ok(()));
    Ok(program)
}

/// Build the §3.2 exit encoding for one meta state.
fn build_dispatch(
    auto: &MetaAutomaton,
    meta: MetaId,
    opts: &GenOptions,
) -> Result<Dispatch, GenError> {
    let succs = auto.successors(meta);
    let graph = &auto.graph;
    match succs.len() {
        // §3.2.1: terminal.
        0 => Ok(Dispatch::End),
        // §3.2.2: unconditional goto ("all entries to compressed meta
        // states fall into this category").
        1 => Ok(Dispatch::Direct(BlockId(succs[0].0))),
        _ => {
            // Compressed-with-barrier special case (§3.2.4 applied to a
            // §2.5 transition): exactly one all-barrier successor, and the
            // other successor covers every possible non-barrier next state.
            if succs.len() == 2 {
                let is_barrier_set =
                    |m: MetaId| auto.members(m).iter().all(|s| graph.state(s).barrier);
                let (b, c) = (is_barrier_set(succs[0]), is_barrier_set(succs[1]));
                if b != c {
                    let (barrier, cont) = if b {
                        (succs[0], succs[1])
                    } else {
                        (succs[1], succs[0])
                    };
                    // All non-barrier successor states of members:
                    let mut covered = true;
                    for m in auto.members(meta).iter() {
                        for s in graph.state(m).term.successors() {
                            if !graph.state(s).barrier && !auto.members(cont).contains(s) {
                                covered = false;
                            }
                        }
                    }
                    if covered {
                        return Ok(Dispatch::DirectWithBarrier {
                            cont: BlockId(cont.0),
                            barrier: BlockId(barrier.0),
                        });
                    }
                }
            }

            // §3.2.3: hashed multiway branch over the globalor aggregate.
            // Possible pc values at this dispatch: every member's graph
            // successors, every successor meta's members, and any barrier
            // state (lingering waiters keep their pc).
            let mut possible: Vec<StateId> = Vec::new();
            let mut push = |s: StateId| {
                if !possible.contains(&s) {
                    possible.push(s);
                }
            };
            for m in auto.members(meta).iter() {
                for s in graph.state(m).term.successors() {
                    push(s);
                }
            }
            for &sm in succs {
                for s in auto.members(sm).iter() {
                    push(s);
                }
            }
            for s in graph.ids() {
                if graph.state(s).barrier {
                    push(s);
                }
            }
            if possible.len() > 64 {
                return Err(GenError::TooManyDispatchStates {
                    meta,
                    states: possible.len(),
                });
            }
            possible.sort_unstable();
            // When the whole graph fits in 64 states, use the paper's
            // BIT(state) coding so rendered output matches Listing 5.
            let bit_of: Vec<(StateId, u32)> = if graph.len() <= 64 {
                possible.iter().map(|&s| (s, s.0)).collect()
            } else {
                possible
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| (s, i as u32))
                    .collect()
            };
            let bit = |s: StateId| -> u32 { bit_of.iter().find(|(st, _)| *st == s).unwrap().1 };
            let barrier_mask: u64 = possible
                .iter()
                .filter(|&&s| graph.state(s).barrier)
                .fold(0, |m, &s| m | (1u64 << bit(s)));
            let keys: Vec<u64> = succs
                .iter()
                .map(|&sm| {
                    auto.members(sm)
                        .iter()
                        .fold(0u64, |k, s| k | (1u64 << bit(s)))
                })
                .collect();
            let hash = msc_hash::find_hash_with(&keys, opts.hash_search)?;
            let targets: Vec<BlockId> = succs.iter().map(|&s| BlockId(s.0)).collect();
            Ok(Dispatch::Hashed {
                bit_of,
                barrier_mask,
                hash,
                targets,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::{convert, ConvertOptions};
    use msc_lang::compile;
    use msc_simd::{MachineConfig, SimdMachine};

    /// The paper's Listing 4.
    const LISTING4: &str = r#"
        main() {
            poly int x;
            if (x) { do { x = 1; } while (x); }
            else   { do { x = 2; } while (x); }
            return(x);
        }
    "#;

    fn build(src: &str, copts: &ConvertOptions, gopts: &GenOptions) -> SimdProgram {
        let p = compile(src).unwrap();
        let auto = convert(&p.graph, copts).unwrap();
        generate(&auto, p.layout.poly_words, p.layout.mono_words, gopts).unwrap()
    }

    #[test]
    fn listing4_base_program_has_eight_blocks() {
        let prog = build(LISTING4, &ConvertOptions::base(), &GenOptions::default());
        assert_eq!(prog.blocks.len(), 8, "Listing 5 has eight ms_ labels");
        prog.validate().unwrap();
        // Exactly one terminal block (the all-halt meta state).
        let ends = prog
            .blocks
            .iter()
            .filter(|b| matches!(b.dispatch, Dispatch::End))
            .count();
        assert_eq!(ends, 1);
    }

    #[test]
    fn listing4_executes_and_matches_semantics() {
        // x starts 0 on every PE: the else path runs, x=2, loop exits when
        // x... wait — `do { x = 2; } while (x)` loops forever on nonzero x!
        // The paper's Listing 4 is deliberately non-terminating for half
        // its paths; use a terminating variant driven by pe_id parity.
        let src = r#"
            main() {
                poly int x, n;
                x = pe_id() % 2;
                n = 0;
                if (x) { do { n += 1; x = x - 1; } while (x); }
                else   { do { n += 10; } while (x); }
                return(n);
            }
        "#;
        let prog = build(src, &ConvertOptions::base(), &GenOptions::default());
        let cfg = MachineConfig::spmd(6);
        let mut m = SimdMachine::new(&prog, &cfg);
        m.run(&prog, &cfg).unwrap();
        let p = compile(src).unwrap();
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..6 {
            let expect = if pe % 2 == 1 { 1 } else { 10 };
            assert_eq!(m.poly_at(pe, ret), expect, "PE {pe}");
        }
    }

    #[test]
    fn compressed_program_is_direct_dispatched() {
        let mut copts = ConvertOptions::compressed();
        copts.subsumption = true;
        let prog = build(LISTING4, &copts, &GenOptions::default());
        assert_eq!(prog.blocks.len(), 2, "Figure 5");
        for b in &prog.blocks {
            assert!(
                matches!(b.dispatch, Dispatch::Direct(_) | Dispatch::End),
                "compressed transitions are unconditional (§2.5): {:?}",
                b.dispatch
            );
        }
    }

    #[test]
    fn csi_shares_work_across_members() {
        let with = build(LISTING4, &ConvertOptions::base(), &GenOptions::default());
        let without = build(
            LISTING4,
            &ConvertOptions::base(),
            &GenOptions {
                csi: false,
                ..Default::default()
            },
        );
        let issues = |p: &SimdProgram| p.control_unit_instrs();
        assert!(
            issues(&with) < issues(&without),
            "CSI must shrink the program: {} vs {}",
            issues(&with),
            issues(&without)
        );
        // The wide meta state ms_2_6_9-equivalent must contain an op
        // guarded by more than one member.
        let shared = with
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .any(|gi| gi.guard.len() > 1 && matches!(gi.instr, SimdInstr::Op(_)));
        assert!(shared);
    }

    #[test]
    fn meta_names_match_listing5_style() {
        assert_eq!(meta_name(&[StateId(0)]), "ms_0");
        assert_eq!(meta_name(&[StateId(2), StateId(6), StateId(9)]), "ms_2_6_9");
    }

    #[test]
    fn barrier_program_round_trips() {
        let src = r#"
            main() {
                poly int x, n;
                x = pe_id() % 3;
                n = 0;
                if (x) { do { n += 1; x -= 1; } while (x); }
                else   { n = 100; }
                wait;
                n += 1000;
                return(n);
            }
        "#;
        let prog = build(src, &ConvertOptions::base(), &GenOptions::default());
        let cfg = MachineConfig::spmd(9);
        let mut m = SimdMachine::new(&prog, &cfg);
        m.run(&prog, &cfg).unwrap();
        let p = compile(src).unwrap();
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..9 {
            let expect = match pe % 3 {
                0 => 1100,
                k => 1000 + k as i64,
            };
            assert_eq!(m.poly_at(pe, ret), expect, "PE {pe}");
        }
    }

    #[test]
    fn hashed_dispatch_uses_state_id_bits_for_small_graphs() {
        let prog = build(LISTING4, &ConvertOptions::base(), &GenOptions::default());
        for b in &prog.blocks {
            if let Dispatch::Hashed { bit_of, .. } = &b.dispatch {
                for (s, bit) in bit_of {
                    assert_eq!(s.0, *bit, "BIT(state) coding for ≤64 states");
                }
            }
        }
    }
}
