//! MPL-style rendering of generated SIMD programs, reproducing the shape
//! of the paper's Listing 5: one label per meta state, `if (pc & BIT(...))`
//! guarded bodies, `apc = globalor(pc)`, and a hashed `switch` dispatch.

use msc_ir::StateId;
use msc_simd::{Dispatch, SimdInstr, SimdProgram};
use std::fmt::Write as _;

/// Render `pc & (BIT(2)|BIT(6))`-style guard expressions.
fn guard_expr(guard: &[StateId]) -> String {
    let bits: Vec<String> = guard.iter().map(|s| format!("BIT({})", s.0)).collect();
    if bits.len() == 1 {
        format!("pc & {}", bits[0])
    } else {
        format!("pc & ({})", bits.join("|"))
    }
}

fn instr_text(i: &SimdInstr) -> String {
    match i {
        SimdInstr::Op(op) => op.to_string(),
        SimdInstr::JumpF { t, f } => format!("JumpF({},{})", f.0, t.0),
        SimdInstr::SetPc(s) => format!("SetPc({})", s.0),
        SimdInstr::Halt => "Ret".to_string(),
        SimdInstr::RetMulti(v) => {
            let ts: Vec<String> = v.iter().map(|s| s.0.to_string()).collect();
            format!("RetMulti({})", ts.join(","))
        }
        SimdInstr::Spawn { child, next } => format!("Spawn({},{})", child.0, next.0),
    }
}

/// Render a whole program in the MPL-like style of Listing 5.
pub fn render_mpl(program: &SimdProgram) -> String {
    let mut out = String::new();
    for block in &program.blocks {
        let _ = writeln!(out, "{}:", block.name);
        // Group consecutive same-guard instructions into one `if` body.
        let mut i = 0;
        while i < block.body.len() {
            let guard = &block.body[i].guard;
            let mut j = i;
            while j < block.body.len() && block.body[j].guard == *guard {
                j += 1;
            }
            let _ = writeln!(out, "  if ({}) {{", guard_expr(guard));
            let mut line = String::from("    ");
            for gi in &block.body[i..j] {
                let t = instr_text(&gi.instr);
                if line.len() + t.len() > 72 {
                    let _ = writeln!(out, "{line}");
                    line = String::from("    ");
                }
                line.push_str(&t);
                line.push(' ');
            }
            if line.trim().is_empty() {
                // nothing
            } else {
                let _ = writeln!(out, "{}", line.trim_end());
            }
            let _ = writeln!(out, "  }}");
            i = j;
        }
        match &block.dispatch {
            Dispatch::End => {
                let _ = writeln!(out, "  /* no next meta state */");
                let _ = writeln!(out, "  exit(0);");
            }
            Dispatch::Direct(t) => {
                let _ = writeln!(out, "  goto {};", program.block(*t).name);
            }
            Dispatch::DirectWithBarrier { cont, barrier } => {
                let _ = writeln!(out, "  apc = globalor(pc);");
                let bmask: Vec<String> = program
                    .block(*barrier)
                    .members
                    .iter()
                    .map(|s| format!("BIT({})", s.0))
                    .collect();
                let _ = writeln!(
                    out,
                    "  if ((apc & ~({})) == 0) goto {};",
                    bmask.join("|"),
                    program.block(*barrier).name
                );
                let _ = writeln!(out, "  goto {};", program.block(*cont).name);
            }
            Dispatch::Hashed {
                hash,
                targets,
                barrier_mask,
                ..
            } => {
                let _ = writeln!(out, "  apc = globalor(pc);");
                if *barrier_mask != 0 {
                    let _ = writeln!(
                        out,
                        "  if ((apc & ~{barrier_mask:#x}) != 0) apc &= ~{barrier_mask:#x};"
                    );
                }
                let _ = writeln!(out, "  switch ({}) {{", hash.expr.render("apc"));
                for (i, key) in hash.keys.iter().enumerate() {
                    let case = hash.expr.eval(*key);
                    let _ = writeln!(
                        out,
                        "  case {}: goto {};",
                        case,
                        program.block(targets[i]).name
                    );
                }
                let _ = writeln!(out, "  }}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GenOptions};
    use msc_core::{convert, ConvertOptions};
    use msc_lang::compile;

    const LISTING4: &str = r#"
        main() {
            poly int x;
            if (x) { do { x = 1; } while (x); }
            else   { do { x = 2; } while (x); }
            return(x);
        }
    "#;

    #[test]
    fn listing5_shape_reproduced() {
        let p = compile(LISTING4).unwrap();
        let auto = convert(&p.graph, &ConvertOptions::base()).unwrap();
        let prog = generate(
            &auto,
            p.layout.poly_words,
            p.layout.mono_words,
            &GenOptions::default(),
        )
        .unwrap();
        let text = render_mpl(&prog);
        // Eight labels, like Listing 5's ms_0 … ms_2_6_9.
        assert!(text.matches("ms_").count() >= 8);
        assert!(text.contains("apc = globalor(pc);"), "{text}");
        assert!(text.contains("switch ("), "{text}");
        assert!(text.contains("if (pc & BIT("), "{text}");
        assert!(text.contains("goto ms_"), "{text}");
        assert!(text.contains("exit(0);"), "{text}");
        // CSI factoring shows up as a multi-bit guard.
        assert!(text.contains("|BIT("), "{text}");
    }

    #[test]
    fn direct_dispatch_renders_goto() {
        let p = compile("main() { poly int x = 1; wait; return(x); }").unwrap();
        let auto = convert(&p.graph, &ConvertOptions::base()).unwrap();
        let prog = generate(
            &auto,
            p.layout.poly_words,
            p.layout.mono_words,
            &GenOptions::default(),
        )
        .unwrap();
        let text = render_mpl(&prog);
        assert!(text.contains("goto ms_"), "{text}");
    }
}
