//! # msc-csi — Common Subexpression Induction
//!
//! §3.1 of the paper: "Any meta state that merged two or more MIMD states
//! effectively contains multiple instruction sequences that are supposed to
//! execute simultaneously. … it is quite possible and practical that any
//! operations that would be performed by more than one sequence can be
//! executed in parallel by all processors. Common subexpression induction
//! (CSI) \[Die92\] is an optimization technique that identifies these
//! operations and 'factors' them out."
//!
//! For the stack code of this pipeline, CSI is an *instruction-alignment*
//! problem: each member MIMD state of a meta state contributes one thread
//! (an op sequence); the SIMD control unit must issue a single instruction
//! stream such that, for every thread, the subsequence of instructions
//! issued while that thread is enabled equals the thread's own sequence.
//! Identical instructions at aligned positions are issued **once** under
//! the union of the threads' enable guards — PEs execute the same
//! instruction on their own stack data, which is exactly the sharing
//! visible in the paper's Listing 5 (`ms_2_6` factors
//! `Push(0) LdL Push(12) StL Pop(2)` across threads 2 and 6).
//!
//! Minimizing issue cost is a weighted shortest-common-supersequence
//! problem (NP-hard for many threads), so — following the \[Die92\] summary
//! quoted in §3.1 — the implementation:
//!
//! 1. computes **operation classes** and a **theoretical lower bound** on
//!    execution time;
//! 2. creates a **linear schedule** two ways: a greedy list schedule over
//!    all threads, and hierarchical pairwise merging by an optimal
//!    two-sequence dynamic program;
//! 3. improves the winner with a **cheap approximate search** (merging
//!    aligned identical slots) and a **permutation-in-range search** —
//!    slots move within the range allowed by their thread-order
//!    dependencies (their earliest/latest positions) to coalesce guard
//!    regions, since every enable-mask change costs cycles.

use msc_ir::op::OpClass;
use msc_ir::util::FxHashMap;
use msc_ir::{CostModel, Op};
use std::fmt;

/// Maximum number of threads (member MIMD states) in one CSI problem; the
/// guard is a `u64` bitmask.
pub const MAX_THREADS: usize = 64;

/// One issued SIMD instruction: the op and the set of threads (as a
/// bitmask) enabled while it executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot {
    /// The instruction.
    pub op: Op,
    /// Bitmask of enabled threads.
    pub active: u64,
}

/// The result of CSI on one meta state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The issued instruction stream with guards.
    pub slots: Vec<Slot>,
    /// Total cost: Σ op costs + guard-switch cost × (#guard regions − 1).
    pub cost: u64,
    /// Theoretical lower bound (see [`lower_bound`]).
    pub lower_bound: u64,
    /// Cost of naive full serialization (no sharing): the baseline a SIMD
    /// machine pays without CSI.
    pub naive_cost: u64,
}

impl Schedule {
    /// Check that, for every thread, the slots it is active in reproduce
    /// exactly its input op sequence — the correctness invariant of CSI.
    pub fn validate(&self, threads: &[Vec<Op>]) -> Result<(), String> {
        for (t, seq) in threads.iter().enumerate() {
            let bit = 1u64 << t;
            let got: Vec<&Op> = self
                .slots
                .iter()
                .filter(|s| s.active & bit != 0)
                .map(|s| &s.op)
                .collect();
            if got.len() != seq.len() || got.iter().zip(seq).any(|(a, b)| **a != *b) {
                return Err(format!(
                    "thread {t}: scheduled subsequence {:?} != input {:?}",
                    got, seq
                ));
            }
        }
        // No slot may have an empty guard.
        if let Some(i) = self.slots.iter().position(|s| s.active == 0) {
            return Err(format!("slot {i} has an empty guard"));
        }
        Ok(())
    }

    /// Number of contiguous same-guard regions.
    pub fn guard_regions(&self) -> usize {
        let mut regions = 0;
        let mut last: Option<u64> = None;
        for s in &self.slots {
            if last != Some(s.active) {
                regions += 1;
                last = Some(s.active);
            }
        }
        regions
    }

    /// Issue count (number of slots) — what sharing reduces.
    pub fn issues(&self) -> usize {
        self.slots.len()
    }
}

/// Errors from [`induce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsiError {
    /// More threads than [`MAX_THREADS`].
    TooManyThreads(usize),
}

impl fmt::Display for CsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsiError::TooManyThreads(n) => {
                write!(
                    f,
                    "{n} threads exceed the CSI guard-word limit of {MAX_THREADS}"
                )
            }
        }
    }
}

impl std::error::Error for CsiError {}

/// Tuning for [`induce_with`].
#[derive(Debug, Clone)]
pub struct CsiOptions {
    /// Cycle cost model (also prices the guard switches).
    pub costs: CostModel,
    /// Maximum passes of the permutation-in-range improvement search.
    pub max_improve_passes: u32,
}

impl Default for CsiOptions {
    fn default() -> Self {
        CsiOptions {
            costs: CostModel::default(),
            max_improve_passes: 64,
        }
    }
}

/// Run CSI with default options.
pub fn induce(threads: &[Vec<Op>]) -> Result<Schedule, CsiError> {
    induce_with(threads, &CsiOptions::default())
}

/// Run CSI on the given thread op sequences (thread *t* guards bit *t*).
pub fn induce_with(threads: &[Vec<Op>], opts: &CsiOptions) -> Result<Schedule, CsiError> {
    if threads.len() > MAX_THREADS {
        return Err(CsiError::TooManyThreads(threads.len()));
    }
    let costs = &opts.costs;
    let lb = lower_bound(threads, costs);
    let naive = naive_cost(threads, costs);

    if threads.iter().all(|t| t.is_empty()) {
        return Ok(Schedule {
            slots: vec![],
            cost: 0,
            lower_bound: 0,
            naive_cost: naive,
        });
    }

    // Three linear schedules: greedy list schedule, hierarchical pairwise
    // DP merge, and plain serialization (sharing can lose to serialization
    // once guard-switch costs are accounted, so serialization stays in the
    // race). Each is improved, then the cheapest wins.
    let candidates = [
        greedy_schedule(threads, costs),
        pairwise_merge_schedule(threads, costs),
        serial_schedule(threads),
    ];
    let mut best: Option<Vec<Slot>> = None;
    for mut slots in candidates {
        // Cheap approximate search: fuse adjacent identical ops with
        // disjoint guards (missed sharing), then the permutation-in-range
        // search.
        for _ in 0..opts.max_improve_passes {
            let fused = fuse_adjacent(&mut slots);
            let moved = coalesce_guards(&mut slots);
            if !fused && !moved {
                break;
            }
        }
        if best
            .as_ref()
            .map(|b| schedule_cost(&slots, costs) < schedule_cost(b, costs))
            .unwrap_or(true)
        {
            best = Some(slots);
        }
    }
    let slots = best.unwrap_or_default();

    let cost = schedule_cost(&slots, costs);
    Ok(Schedule {
        slots,
        cost,
        lower_bound: lb,
        naive_cost: naive,
    })
}

/// The cost the SIMD machine pays to execute `slots`: op issue costs plus
/// one guard switch per change of enable mask (the first region's mask
/// set-up is charged too).
pub fn schedule_cost(slots: &[Slot], costs: &CostModel) -> u64 {
    let mut total = 0u64;
    let mut last: Option<u64> = None;
    for s in slots {
        total += costs.op_cost(&s.op) as u64;
        if last != Some(s.active) {
            total += costs.guard_switch as u64;
            last = Some(s.active);
        }
    }
    total
}

/// Theoretical lower bound on any valid schedule's cost:
///
/// * any schedule must contain every thread's ops in order, so it costs at
///   least the most expensive single thread; and
/// * a shared slot issues one op for several threads, but each *distinct*
///   op must be issued at least `max_t count(op, t)` times (the classic
///   supersequence bound), so the per-op bound sums those.
///
/// The returned bound is the max of the two plus one guard set-up.
pub fn lower_bound(threads: &[Vec<Op>], costs: &CostModel) -> u64 {
    let per_thread = threads
        .iter()
        .map(|t| costs.block_cost(t))
        .max()
        .unwrap_or(0);
    let mut max_counts: FxHashMap<&Op, u64> = FxHashMap::default();
    for t in threads {
        let mut counts: FxHashMap<&Op, u64> = FxHashMap::default();
        for op in t {
            *counts.entry(op).or_insert(0) += 1;
        }
        for (op, c) in counts {
            let e = max_counts.entry(op).or_insert(0);
            *e = (*e).max(c);
        }
    }
    let per_op: u64 = max_counts
        .iter()
        .map(|(op, c)| *c * costs.op_cost(op) as u64)
        .sum();
    let body = per_thread.max(per_op);
    if body == 0 {
        0
    } else {
        body + costs.guard_switch as u64
    }
}

/// Cost of running the threads fully serialized with no sharing — one
/// guard region per non-empty thread.
pub fn naive_cost(threads: &[Vec<Op>], costs: &CostModel) -> u64 {
    threads
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| costs.block_cost(t) + costs.guard_switch as u64)
        .sum()
}

/// Histogram of op classes across all threads (the \[Die92\] "operation
/// classes" used for search pruning; exposed for the experiment harness).
pub fn op_class_histogram(threads: &[Vec<Op>]) -> FxHashMap<OpClass, usize> {
    let mut h = FxHashMap::default();
    for t in threads {
        for op in t {
            *h.entry(op.class()).or_insert(0) += 1;
        }
    }
    h
}

/// Thread-by-thread serialization (the no-CSI baseline, kept as a candidate
/// because it minimizes guard switches).
fn serial_schedule(threads: &[Vec<Op>]) -> Vec<Slot> {
    let mut slots = Vec::new();
    for (t, seq) in threads.iter().enumerate() {
        for op in seq {
            slots.push(Slot {
                op: op.clone(),
                active: 1u64 << t,
            });
        }
    }
    slots
}

/// Greedy list schedule: at each step, among the candidate "next op of some
/// thread", pick the one shared by the most remaining cost, breaking ties
/// toward the guard used by the previous slot (to minimize mask switches).
fn greedy_schedule(threads: &[Vec<Op>], costs: &CostModel) -> Vec<Slot> {
    let n = threads.len();
    let mut pos = vec![0usize; n];
    let mut slots: Vec<Slot> = Vec::new();
    let mut prev_guard = 0u64;
    loop {
        // Candidate next ops.
        let mut cands: Vec<(&Op, u64)> = Vec::new();
        for t in 0..n {
            if pos[t] < threads[t].len() {
                let op = &threads[t][pos[t]];
                if let Some(entry) = cands.iter_mut().find(|(o, _)| *o == op) {
                    entry.1 |= 1 << t;
                } else {
                    cands.push((op, 1 << t));
                }
            }
        }
        if cands.is_empty() {
            break;
        }
        // Score: shared issue saving, then guard affinity, then op cost
        // (prefer retiring expensive ops when shared widely).
        let (op, active) = cands
            .iter()
            .max_by_key(|(op, mask)| {
                let width = mask.count_ones() as u64;
                let saving = (width - 1) * costs.op_cost(op) as u64;
                let affinity = (*mask == prev_guard) as u64;
                (saving, affinity, std::cmp::Reverse(costs.op_cost(op)))
            })
            .map(|(op, mask)| ((*op).clone(), *mask))
            .unwrap();
        for (t, p) in pos.iter_mut().enumerate() {
            if active & (1 << t) != 0 {
                *p += 1;
            }
        }
        prev_guard = active;
        slots.push(Slot { op, active });
    }
    slots
}

/// Hierarchical pairwise merging: threads become guarded sequences, sorted
/// by descending cost; each is merged into the accumulated schedule with an
/// optimal two-sequence dynamic program (inter-thread CSE on aligned ops).
fn pairwise_merge_schedule(threads: &[Vec<Op>], costs: &CostModel) -> Vec<Slot> {
    let mut seqs: Vec<Vec<Slot>> = threads
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(i, t)| {
            t.iter()
                .map(|op| Slot {
                    op: op.clone(),
                    active: 1u64 << i,
                })
                .collect()
        })
        .collect();
    seqs.sort_by_key(|s| {
        std::cmp::Reverse(s.iter().map(|sl| costs.op_cost(&sl.op) as u64).sum::<u64>())
    });
    let mut acc: Vec<Slot> = Vec::new();
    for seq in seqs {
        acc = merge_two(&acc, &seq, costs);
    }
    acc
}

/// Optimal merge of two guarded sequences by dynamic programming: classic
/// edit-path DP where aligning two slots with equal ops issues one shared
/// slot (cost charged once). Guard-switch effects are handled afterwards by
/// the improvement passes.
fn merge_two(a: &[Slot], b: &[Slot], costs: &CostModel) -> Vec<Slot> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let (la, lb) = (a.len(), b.len());
    // dp[i][j]: min cost to schedule a[i..] and b[j..].
    let mut dp = vec![vec![0u64; lb + 1]; la + 1];
    for i in (0..la).rev() {
        dp[i][lb] = dp[i + 1][lb] + costs.op_cost(&a[i].op) as u64;
    }
    for j in (0..lb).rev() {
        dp[la][j] = dp[la][j + 1] + costs.op_cost(&b[j].op) as u64;
    }
    for i in (0..la).rev() {
        for j in (0..lb).rev() {
            let take_a = dp[i + 1][j] + costs.op_cost(&a[i].op) as u64;
            let take_b = dp[i][j + 1] + costs.op_cost(&b[j].op) as u64;
            let mut best = take_a.min(take_b);
            if a[i].op == b[j].op {
                best = best.min(dp[i + 1][j + 1] + costs.op_cost(&a[i].op) as u64);
            }
            dp[i][j] = best;
        }
    }
    // Reconstruct.
    let mut out = Vec::with_capacity(la + lb);
    let (mut i, mut j) = (0, 0);
    while i < la || j < lb {
        if i < la && j < lb && a[i].op == b[j].op {
            let shared = dp[i + 1][j + 1] + costs.op_cost(&a[i].op) as u64;
            if dp[i][j] == shared {
                out.push(Slot {
                    op: a[i].op.clone(),
                    active: a[i].active | b[j].active,
                });
                i += 1;
                j += 1;
                continue;
            }
        }
        if i < la && dp[i][j] == dp[i + 1][j] + costs.op_cost(&a[i].op) as u64 {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out
}

/// Cheap approximate search: adjacent slots with the same op and disjoint
/// guards can be fused into one shared issue. Returns true if anything
/// changed.
fn fuse_adjacent(slots: &mut Vec<Slot>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i + 1 < slots.len() {
        if slots[i].op == slots[i + 1].op && slots[i].active & slots[i + 1].active == 0 {
            let merged_active = slots[i].active | slots[i + 1].active;
            slots[i].active = merged_active;
            slots.remove(i + 1);
            changed = true;
        } else {
            i += 1;
        }
    }
    changed
}

/// Permutation-in-range search: a slot may move past a neighbour when no
/// thread is active in both (their thread-order dependency ranges overlap
/// freely), so swapping preserves every thread's subsequence. Swaps are
/// made when they reduce the number of guard regions (and therefore the
/// enable-mask switching cost). Returns true if anything moved.
fn coalesce_guards(slots: &mut [Slot]) -> bool {
    let mut changed = false;
    let n = slots.len();
    // Bidirectional bubble passes.
    for i in 1..n {
        // Try to sink slot i earlier toward a same-guard neighbour.
        let mut j = i;
        while j > 0 && slots[j - 1].active & slots[j].active == 0 && swap_improves(slots, j - 1) {
            slots.swap(j - 1, j);
            changed = true;
            j -= 1;
        }
    }
    changed
}

/// Would swapping `slots[k]` and `slots[k+1]` reduce guard transitions?
fn swap_improves(slots: &[Slot], k: usize) -> bool {
    let before = |a: Option<u64>, b: u64| (a != Some(b)) as i32;
    let prev = if k > 0 {
        Some(slots[k - 1].active)
    } else {
        None
    };
    let next = slots.get(k + 2).map(|s| s.active);
    let (x, y) = (slots[k].active, slots[k + 1].active);
    // Transitions around the pair, before and after the swap.
    let cur = before(prev, x) + (x != y) as i32 + next.map(|n| (y != n) as i32).unwrap_or(0);
    let new = before(prev, y) + (y != x) as i32 + next.map(|n| (x != n) as i32).unwrap_or(0);
    new < cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_ir::{Addr, BinOp};

    fn c() -> CostModel {
        CostModel::default()
    }

    /// The ms_2_6 factoring from Listing 5: thread 0 = `Push(1); <store x;
    /// load x>`, thread 1 = `Push(2); <same suffix>`. CSI must share the
    /// suffix.
    #[test]
    fn listing5_ms_2_6_factoring() {
        let suffix = vec![Op::Push(0), Op::St(Addr::poly(12)), Op::Ld(Addr::poly(4))];
        let mut t0 = vec![Op::Push(1)];
        t0.extend(suffix.clone());
        let mut t1 = vec![Op::Push(2)];
        t1.extend(suffix.clone());
        let s = induce(&[t0.clone(), t1.clone()]).unwrap();
        s.validate(&[t0, t1]).unwrap();
        // 2 private prefixes + 3 shared suffix ops = 5 issues (not 8).
        assert_eq!(s.issues(), 5, "{:?}", s.slots);
        let shared = s.slots.iter().filter(|s| s.active == 0b11).count();
        assert_eq!(shared, 3);
        assert!(s.cost < s.naive_cost);
    }

    #[test]
    fn identical_threads_collapse_entirely() {
        let t = vec![Op::Push(7), Op::Bin(BinOp::Add), Op::St(Addr::poly(0))];
        let threads = vec![t.clone(), t.clone(), t.clone()];
        let s = induce(&threads).unwrap();
        s.validate(&threads).unwrap();
        assert_eq!(s.issues(), 3);
        assert!(s.slots.iter().all(|sl| sl.active == 0b111));
        assert_eq!(s.guard_regions(), 1);
        assert_eq!(s.cost, s.lower_bound, "identical threads achieve the bound");
    }

    #[test]
    fn disjoint_threads_serialize() {
        let t0 = vec![Op::Push(1), Op::Push(2)];
        let t1 = vec![Op::Bin(BinOp::Mul), Op::Bin(BinOp::Div)];
        let s = induce(&[t0.clone(), t1.clone()]).unwrap();
        s.validate(&[t0, t1]).unwrap();
        assert_eq!(s.issues(), 4, "nothing shareable");
        assert_eq!(s.cost, s.naive_cost);
    }

    #[test]
    fn single_thread_passthrough() {
        let t = vec![Op::Push(1), Op::Ld(Addr::poly(0)), Op::Bin(BinOp::Add)];
        let s = induce(std::slice::from_ref(&t)).unwrap();
        s.validate(std::slice::from_ref(&t)).unwrap();
        assert_eq!(s.issues(), t.len());
        assert_eq!(s.guard_regions(), 1);
    }

    #[test]
    fn empty_input() {
        let s = induce(&[]).unwrap();
        assert_eq!(s.issues(), 0);
        assert_eq!(s.cost, 0);
        let s = induce(&[vec![], vec![]]).unwrap();
        assert_eq!(s.issues(), 0);
    }

    #[test]
    fn too_many_threads_error() {
        let threads: Vec<Vec<Op>> = (0..65).map(|_| vec![Op::Push(0)]).collect();
        assert_eq!(induce(&threads), Err(CsiError::TooManyThreads(65)));
    }

    #[test]
    fn cost_between_bounds() {
        let t0 = vec![Op::Push(1), Op::Bin(BinOp::Add), Op::St(Addr::poly(0))];
        let t1 = vec![Op::Push(2), Op::Bin(BinOp::Add), Op::St(Addr::poly(0))];
        let t2 = vec![Op::Push(1), Op::Bin(BinOp::Mul)];
        let threads = vec![t0, t1, t2];
        let s = induce(&threads).unwrap();
        s.validate(&threads).unwrap();
        assert!(
            s.lower_bound <= s.cost,
            "lb {} > cost {}",
            s.lower_bound,
            s.cost
        );
        assert!(
            s.cost <= s.naive_cost,
            "cost {} > naive {}",
            s.cost,
            s.naive_cost
        );
    }

    #[test]
    fn repeated_ops_within_thread_respect_multiplicity() {
        // Thread 0 needs Push(1) twice; thread 1 once. Supersequence must
        // issue Push(1) at least twice.
        let t0 = vec![Op::Push(1), Op::Push(1)];
        let t1 = vec![Op::Push(1)];
        let s = induce(&[t0.clone(), t1.clone()]).unwrap();
        s.validate(&[t0, t1]).unwrap();
        assert_eq!(s.issues(), 2);
    }

    #[test]
    fn guard_coalescing_reduces_regions() {
        // Threads with interleavable private ops: a good schedule groups
        // each thread's private ops contiguously.
        let t0 = vec![Op::Push(1), Op::Push(2), Op::Push(3)];
        let t1 = vec![
            Op::Bin(BinOp::Mul),
            Op::Bin(BinOp::Div),
            Op::Bin(BinOp::Rem),
        ];
        let s = induce(&[t0.clone(), t1.clone()]).unwrap();
        s.validate(&[t0, t1]).unwrap();
        assert_eq!(s.guard_regions(), 2, "{:?}", s.slots);
    }

    #[test]
    fn lower_bound_accounts_for_heavier_thread() {
        let t0 = vec![Op::Bin(BinOp::Div); 4]; // 64 cycles
        let t1 = vec![Op::Push(0)];
        let lb = lower_bound(&[t0, t1], &c());
        assert!(lb >= 64);
    }

    #[test]
    fn op_class_histogram_counts() {
        let t0 = vec![Op::Push(1), Op::Bin(BinOp::Add), Op::Ld(Addr::poly(0))];
        let h = op_class_histogram(&[t0]);
        assert_eq!(h.get(&OpClass::Stack), Some(&1));
        assert_eq!(h.get(&OpClass::IntAlu), Some(&1));
        assert_eq!(h.get(&OpClass::Memory), Some(&1));
    }

    #[test]
    fn shared_prefix_and_suffix_with_divergent_middle() {
        let pre = vec![Op::Ld(Addr::poly(0)), Op::Push(10)];
        let post = vec![Op::St(Addr::poly(1))];
        let mut t0 = pre.clone();
        t0.push(Op::Bin(BinOp::Add));
        t0.extend(post.clone());
        let mut t1 = pre.clone();
        t1.push(Op::Bin(BinOp::Sub));
        t1.extend(post.clone());
        let s = induce(&[t0.clone(), t1.clone()]).unwrap();
        s.validate(&[t0, t1]).unwrap();
        // 2 shared prefix + 2 divergent + 1 shared suffix = 5.
        assert_eq!(s.issues(), 5, "{:?}", s.slots);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use msc_ir::{Addr, BinOp};
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0i64..4).prop_map(Op::Push),
            (0u32..4).prop_map(|i| Op::Ld(Addr::poly(i))),
            (0u32..4).prop_map(|i| Op::St(Addr::poly(i))),
            Just(Op::Bin(BinOp::Add)),
            Just(Op::Bin(BinOp::Mul)),
            Just(Op::Dup),
        ]
    }

    fn arb_threads() -> impl Strategy<Value = Vec<Vec<Op>>> {
        prop::collection::vec(prop::collection::vec(arb_op(), 0..12), 1..6)
    }

    proptest! {
        /// The fundamental CSI invariant: every thread's enabled
        /// subsequence equals its input, and cost sits between the
        /// theoretical lower bound and naive serialization.
        #[test]
        fn schedule_is_valid_and_bounded(threads in arb_threads()) {
            let s = induce(&threads).unwrap();
            prop_assert!(s.validate(&threads).is_ok());
            prop_assert!(s.cost <= s.naive_cost);
            prop_assert!(s.lower_bound <= s.cost);
        }

        /// Scheduling is deterministic.
        #[test]
        fn deterministic(threads in arb_threads()) {
            let a = induce(&threads).unwrap();
            let b = induce(&threads).unwrap();
            prop_assert_eq!(a, b);
        }

        /// Two identical threads share every instruction: the schedule has
        /// exactly one issue per op, all under the joint guard.
        #[test]
        fn identical_pair_shares_fully(thread in prop::collection::vec(arb_op(), 1..12)) {
            let threads = vec![thread.clone(), thread.clone()];
            let s = induce(&threads).unwrap();
            prop_assert!(s.validate(&threads).is_ok());
            prop_assert_eq!(s.issues(), thread.len());
            prop_assert!(s.slots.iter().all(|sl| sl.active == 0b11));
        }
    }
}
