//! # msc-hash — customized hash functions for multiway branch encoding
//!
//! §3.2.3 of the paper: "each possible 'pc' value is assigned a bit; thus,
//! a `globalor` of the 'pc' values from all processors determines the
//! aggregate", and the resulting aggregate keys an N-way branch. The
//! aggregate values are sparse bitmasks, so a naive jump table over them
//! would need 2^S entries. The companion report \[Die92a\] ("Coding Multiway
//! Branches Using Customized Hash Functions") instead searches for a tiny
//! *perfect* hash that maps exactly the case values that can occur onto a
//! dense range, so the compiler emits a jump table — visible in the paper's
//! Listing 5 as switches like
//!
//! ```c
//! switch (((-apc) >> 5) & 3) { ... }
//! switch ((((apc >> 6) ^ apc) & 15)) { ... }
//! ```
//!
//! [`find_hash`] reproduces that search: it tries, in increasing order of
//! evaluation cost and table size, the hash families observed in the
//! generated code (shift-mask of `x` or `-x`, shift-xor-mask,
//! shift-add-mask, multiply-shift-mask) and returns the first expression
//! that is injective on the key set. [`HashExpr::eval`] lets the SIMD
//! simulator execute the dispatch; [`HashExpr::render`] prints the C-like
//! form for MPL-style output.

use std::fmt;

/// A candidate hash expression over a `u64` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashExpr {
    /// `((±x) >> shift) & mask` — the `((-apc) >> 5) & 3` family.
    ShiftMask {
        /// Negate (two's complement) before shifting.
        neg: bool,
        /// Right shift amount.
        shift: u32,
        /// Final mask (table size − 1).
        mask: u64,
    },
    /// `((x >> shift) ^ x) & mask` — the `((apc >> 6) ^ apc) & 15` family.
    XorFold {
        /// Right shift amount.
        shift: u32,
        /// Final mask.
        mask: u64,
    },
    /// `((x >> shift) + x) & mask`.
    AddFold {
        /// Right shift amount.
        shift: u32,
        /// Final mask.
        mask: u64,
    },
    /// `((x * mul) >> shift) & mask` — multiplicative hashing fallback.
    MulShift {
        /// Odd multiplier.
        mul: u64,
        /// Right shift amount.
        shift: u32,
        /// Final mask.
        mask: u64,
    },
}

impl HashExpr {
    /// Evaluate the hash on a key.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        match *self {
            HashExpr::ShiftMask { neg, shift, mask } => {
                let v = if neg { x.wrapping_neg() } else { x };
                (v >> shift) & mask
            }
            HashExpr::XorFold { shift, mask } => ((x >> shift) ^ x) & mask,
            HashExpr::AddFold { shift, mask } => ((x >> shift).wrapping_add(x)) & mask,
            HashExpr::MulShift { mul, shift, mask } => (x.wrapping_mul(mul) >> shift) & mask,
        }
    }

    /// Size of the jump table this hash indexes (mask + 1).
    pub fn table_size(&self) -> usize {
        let mask = match *self {
            HashExpr::ShiftMask { mask, .. }
            | HashExpr::XorFold { mask, .. }
            | HashExpr::AddFold { mask, .. }
            | HashExpr::MulShift { mask, .. } => mask,
        };
        mask as usize + 1
    }

    /// Number of ALU operations needed to evaluate the hash (the cost the
    /// search minimizes after table size).
    pub fn op_count(&self) -> u32 {
        match *self {
            HashExpr::ShiftMask { neg, shift, .. } => {
                1 + neg as u32 + (shift > 0) as u32 // mask + optional neg + optional shift
            }
            HashExpr::XorFold { shift, .. } | HashExpr::AddFold { shift, .. } => {
                2 + (shift > 0) as u32
            }
            HashExpr::MulShift { shift, .. } => 2 + (shift > 0) as u32,
        }
    }

    /// Render as a C-like expression over the variable name `var`
    /// (matching the style of the paper's Listing 5).
    pub fn render(&self, var: &str) -> String {
        match *self {
            HashExpr::ShiftMask { neg, shift, mask } => {
                let v = if neg {
                    format!("(-{var})")
                } else {
                    var.to_string()
                };
                if shift > 0 {
                    format!("(({v} >> {shift}) & {mask})")
                } else {
                    format!("({v} & {mask})")
                }
            }
            HashExpr::XorFold { shift, mask } => {
                format!("((({var} >> {shift}) ^ {var}) & {mask})")
            }
            HashExpr::AddFold { shift, mask } => {
                format!("((({var} >> {shift}) + {var}) & {mask})")
            }
            HashExpr::MulShift { mul, shift, mask } => {
                format!("((({var} * {mul}u) >> {shift}) & {mask})")
            }
        }
    }
}

impl fmt::Display for HashExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render("x"))
    }
}

/// A perfect hash for a specific key set: the expression plus the dense
/// dispatch table mapping hash values back to key indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectHash {
    /// The hash expression.
    pub expr: HashExpr,
    /// `table[expr.eval(keys[i])] == Some(i)`; slots no key maps to are
    /// `None` (unreachable `switch` cases).
    pub table: Vec<Option<u32>>,
    /// The key set the hash was built for, in input order.
    pub keys: Vec<u64>,
}

impl PerfectHash {
    /// Look up which key index `key` maps to. Returns `None` for a value
    /// outside the construction set (dispatching on such a value is a
    /// program bug the simulator reports rather than mis-jumping on).
    pub fn lookup(&self, key: u64) -> Option<u32> {
        let h = self.expr.eval(key) as usize;
        let i = self.table.get(h).copied().flatten()?;
        // Guard against aliasing by values outside the key set.
        (self.keys[i as usize] == key).then_some(i)
    }

    /// Fraction of table slots actually used.
    pub fn load_factor(&self) -> f64 {
        if self.table.is_empty() {
            return 0.0;
        }
        self.table.iter().filter(|e| e.is_some()).count() as f64 / self.table.len() as f64
    }
}

/// Why no hash could be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashError {
    /// The key set was empty.
    NoKeys,
    /// Two identical keys were supplied.
    DuplicateKey(u64),
    /// No tried family/parameter combination was injective within
    /// [`SearchOptions::max_table_bits`].
    NotFound,
}

impl fmt::Display for HashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashError::NoKeys => write!(f, "cannot hash an empty key set"),
            HashError::DuplicateKey(k) => write!(f, "duplicate key {k:#x}"),
            HashError::NotFound => write!(f, "no perfect hash found within the search bounds"),
        }
    }
}

impl std::error::Error for HashError {}

/// Search parameters for [`find_hash_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Largest table considered, as a power of two (table ≤ 2^max_table_bits).
    pub max_table_bits: u32,
    /// Allow the multiplicative family (more ops, but succeeds on
    /// adversarial key sets the folding families miss).
    pub allow_mul: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_table_bits: 16,
            allow_mul: true,
        }
    }
}

/// Fixed odd multipliers tried by the multiplicative family: the 64-bit
/// golden-ratio constant and a few splitmix64-style mixers. Deterministic
/// so generated code is reproducible.
const MULTIPLIERS: [u64; 6] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xff51_afd7_ed55_8ccd,
    0xc4ce_b9fe_1a85_ec53,
    0x2545_f491_4f6c_dd1d,
];

/// Find a minimal perfect hash for `keys` with default search options.
pub fn find_hash(keys: &[u64]) -> Result<PerfectHash, HashError> {
    find_hash_with(keys, SearchOptions::default())
}

/// Find a perfect hash for `keys`: smallest table size first, then fewest
/// ALU ops, mirroring \[Die92a\]'s goal of "mak\[ing\] the case values
/// contiguous so that the compiler will use a jump table".
pub fn find_hash_with(keys: &[u64], opts: SearchOptions) -> Result<PerfectHash, HashError> {
    if keys.is_empty() {
        return Err(HashError::NoKeys);
    }
    {
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(HashError::DuplicateKey(w[0]));
            }
        }
    }
    let min_bits = if keys.len() == 1 {
        0
    } else {
        usize::BITS - (keys.len() - 1).leading_zeros()
    };
    for bits in min_bits..=opts.max_table_bits {
        let mask = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
        // Families in increasing op-count order.
        let mut candidates: Vec<HashExpr> = Vec::new();
        for shift in 0..64 {
            candidates.push(HashExpr::ShiftMask {
                neg: false,
                shift,
                mask,
            });
        }
        for shift in 0..64 {
            candidates.push(HashExpr::ShiftMask {
                neg: true,
                shift,
                mask,
            });
        }
        for shift in 1..64 {
            candidates.push(HashExpr::XorFold { shift, mask });
        }
        for shift in 1..64 {
            candidates.push(HashExpr::AddFold { shift, mask });
        }
        if opts.allow_mul {
            for &mul in &MULTIPLIERS {
                for shift in (0..64).rev() {
                    candidates.push(HashExpr::MulShift { mul, shift, mask });
                }
            }
        }
        for expr in candidates {
            if let Some(table) = try_build(keys, &expr) {
                return Ok(PerfectHash {
                    expr,
                    table,
                    keys: keys.to_vec(),
                });
            }
        }
    }
    Err(HashError::NotFound)
}

/// Attempt to build the dispatch table; `None` on any collision.
fn try_build(keys: &[u64], expr: &HashExpr) -> Option<Vec<Option<u32>>> {
    let mut table = vec![None; expr.table_size()];
    for (i, &k) in keys.iter().enumerate() {
        let h = expr.eval(k) as usize;
        if table[h].is_some() {
            return None;
        }
        table[h] = Some(i as u32);
    }
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The aggregate-pc case values at the end of the paper's `ms_0`:
    /// BIT(2)|BIT(6), BIT(6), BIT(2).
    #[test]
    fn listing5_ms0_cases() {
        let keys = [(1u64 << 2) | (1 << 6), 1 << 6, 1 << 2];
        let ph = find_hash(&keys).unwrap();
        assert!(ph.table.len() <= 4, "minimal power-of-two table for 3 keys");
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(ph.lookup(k), Some(i as u32));
        }
    }

    /// The five-way dispatch at the end of `ms_2_6` / `ms_2_6_9`:
    /// {2,6}, {9}, {6,9}, {2,9}, {2,6,9} as bitmasks.
    #[test]
    fn listing5_five_way_dispatch() {
        let b = |s: &[u32]| s.iter().fold(0u64, |m, &x| m | (1 << x));
        let keys = [b(&[2, 6]), b(&[9]), b(&[6, 9]), b(&[2, 9]), b(&[2, 6, 9])];
        let ph = find_hash(&keys).unwrap();
        assert!(
            ph.table.len() <= 16,
            "paper's generated mask was 15 (table 16)"
        );
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(ph.lookup(k), Some(i as u32));
        }
    }

    #[test]
    fn single_key_gets_trivial_hash() {
        let ph = find_hash(&[0xdead_beef]).unwrap();
        assert_eq!(ph.table.len(), 1);
        assert_eq!(ph.lookup(0xdead_beef), Some(0));
    }

    #[test]
    fn lookup_rejects_aliasing_foreign_keys() {
        let keys = [1u64 << 2, 1 << 6];
        let ph = find_hash(&keys).unwrap();
        // Some value that is not a key must not silently map to one.
        for foreign in [0u64, 3, (1 << 2) | (1 << 6), u64::MAX] {
            if !keys.contains(&foreign) {
                assert_eq!(ph.lookup(foreign), None, "foreign {foreign:#x} aliased");
            }
        }
    }

    #[test]
    fn empty_and_duplicate_keys_error() {
        assert_eq!(find_hash(&[]), Err(HashError::NoKeys));
        assert_eq!(find_hash(&[5, 5]), Err(HashError::DuplicateKey(5)));
    }

    #[test]
    fn dense_small_keys_hash_identity_like() {
        let keys: Vec<u64> = (0..8).collect();
        let ph = find_hash(&keys).unwrap();
        assert_eq!(ph.table.len(), 8);
        assert_eq!(
            ph.expr.op_count(),
            1,
            "identity-with-mask should win: {}",
            ph.expr
        );
    }

    #[test]
    fn sparse_bitmask_keys_always_succeed() {
        // Every aggregate of up to 3 bits from a 12-bit pc space.
        let mut keys = vec![];
        for a in 0..12u32 {
            for b in a..12 {
                for c in b..12 {
                    keys.push((1u64 << a) | (1 << b) | (1 << c));
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let ph = find_hash(&keys).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(ph.lookup(k), Some(i as u32));
        }
    }

    #[test]
    fn render_matches_listing5_style() {
        let e = HashExpr::ShiftMask {
            neg: true,
            shift: 5,
            mask: 3,
        };
        assert_eq!(e.render("apc"), "(((-apc) >> 5) & 3)");
        let e = HashExpr::XorFold { shift: 6, mask: 15 };
        assert_eq!(e.render("apc"), "(((apc >> 6) ^ apc) & 15)");
    }

    #[test]
    fn load_factor_counts_used_slots() {
        let keys = [1u64 << 2, 1 << 6, (1 << 2) | (1 << 6)];
        let ph = find_hash(&keys).unwrap();
        let used = ph.table.iter().filter(|e| e.is_some()).count();
        assert_eq!(used, 3);
        assert!((ph.load_factor() - 3.0 / ph.table.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn op_count_ordering() {
        assert!(
            HashExpr::ShiftMask {
                neg: false,
                shift: 0,
                mask: 7
            }
            .op_count()
                < HashExpr::XorFold { shift: 3, mask: 7 }.op_count()
        );
    }

    #[test]
    fn search_without_mul_family_still_works_on_bitmasks() {
        let keys = [1u64 << 3, 1 << 7, (1 << 3) | (1 << 7), 1 << 11];
        let ph = find_hash_with(
            &keys,
            SearchOptions {
                max_table_bits: 8,
                allow_mul: false,
            },
        )
        .unwrap();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(ph.lookup(k), Some(i as u32));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any set of distinct keys gets a correct perfect hash: every key
        /// maps to its own index, and the table size is a power of two no
        /// smaller than the key count.
        #[test]
        fn perfect_on_arbitrary_distinct_keys(
            mut keys in prop::collection::hash_set(any::<u64>(), 1..48)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>())
        ) {
            keys.sort_unstable();
            let ph = find_hash(&keys).unwrap();
            prop_assert!(ph.table.len().is_power_of_two());
            prop_assert!(ph.table.len() >= keys.len());
            for (i, &k) in keys.iter().enumerate() {
                prop_assert_eq!(ph.lookup(k), Some(i as u32));
            }
        }

        /// Evaluation is deterministic and within the table bounds.
        #[test]
        fn eval_in_bounds(
            keys in prop::collection::hash_set(any::<u64>(), 2..32)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
            probe in any::<u64>(),
        ) {
            let ph = find_hash(&keys).unwrap();
            let h = ph.expr.eval(probe);
            prop_assert!((h as usize) < ph.table.len());
            prop_assert_eq!(ph.expr.eval(probe), h);
        }

        /// Sparse bitmask keys (the real meta-dispatch workload) always
        /// hash, even with the multiplicative family disabled growth room.
        #[test]
        fn bitmask_keys_hash(bit_sets in prop::collection::hash_set(
            prop::collection::vec(0u32..20, 1..4), 1..24)
        ) {
            let mut keys: Vec<u64> = bit_sets
                .into_iter()
                .map(|bits| bits.into_iter().fold(0u64, |m, b| m | (1 << b)))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            let ph = find_hash(&keys).unwrap();
            for (i, &k) in keys.iter().enumerate() {
                prop_assert_eq!(ph.lookup(k), Some(i as u32));
            }
        }
    }
}
