//! A bounded MPMC queue with explicit rejection.
//!
//! This is the admission-control half of the daemon: the producer — the
//! acceptor thread queueing whole connections in blocking mode, the
//! reactor queueing decoded requests in event-loop mode — calls
//! [`BoundedQueue::try_push`], and a `Full` answer becomes an HTTP 503
//! (load shedding) instead of an unbounded backlog. Workers block in
//! [`BoundedQueue::pop`]; [`BoundedQueue::close`] wakes them all for
//! shutdown, letting them drain whatever was already admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the request.
    Full,
    /// The queue is closed — the daemon is shutting down.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity FIFO shared between the acceptor and the worker pool.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or refuse immediately — never blocks. On refusal the
    /// item comes back to the caller (the acceptor still owns the
    /// connection it must answer 503 on).
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the oldest item, blocking while the queue is open and empty.
    /// `None` means closed **and** drained — the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Close the queue: future pushes fail, blocked poppers wake, and
    /// already-admitted items are still handed out (drain semantics).
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_releases_blocked_poppers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.pop(), q.pop()))
        };
        // Give the waiter time to drain the 7 and block on the second pop.
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(waiter.join().unwrap(), (Some(7), None));
        assert_eq!(q.try_push(8), Err((8, PushError::Closed)));
    }

    #[test]
    fn close_with_backlog_still_hands_out_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
