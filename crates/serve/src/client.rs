//! A minimal blocking HTTP/1.1 client for tests and the load generator.
//!
//! Speaks exactly the subset the daemon serves: keep-alive connections,
//! `Content-Length`-framed bodies, JSON payloads. Not a general client —
//! a test fixture that happens to be good enough to hammer the daemon
//! over real sockets.

use msc_obs::json::{self, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes as text.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Option<Json> {
        json::parse(&self.body).ok()
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7643`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with explicit socket read/write timeouts.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Issue one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: msc-serve\r\n");
        if let Some(b) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                b.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(b) = body {
            self.writer.write_all(b.as_bytes())?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &Json) -> std::io::Result<Response> {
        self.request("POST", path, Some(&body.render()))
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("bad status line: {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| bad("response has no Content-Length".to_string()))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body".to_string()))?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}
