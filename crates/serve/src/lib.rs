//! # msc-serve — the compile-and-run service daemon
//!
//! Turns the [`msc_engine`] pipeline into a long-lived network service:
//! a dependency-free HTTP/1.1 daemon (std `TcpListener`, hand-rolled
//! parser with hard limits) exposing
//!
//! | endpoint         | semantics                                          |
//! |------------------|----------------------------------------------------|
//! | `POST /compile`  | compile one MIMDC source through the engine cache  |
//! | `POST /run`      | compile + execute on the SIMD simulator            |
//! | `POST /batch`    | compile a set of jobs as one engine batch          |
//! | `POST /match`    | regex over sharded input via the meta-automaton    |
//! | `GET /metrics`   | the aggregated [`msc_obs::Registry`] as JSON       |
//! | `GET /healthz`   | liveness + queue depth                             |
//!
//! The daemon is shaped for sustained load rather than peak benchmarks:
//!
//! - **Bounded admission.** Accepted connections enter a fixed-depth
//!   [`queue::BoundedQueue`]; when it is full the acceptor answers
//!   `503` + `Retry-After` immediately (load shedding) instead of
//!   letting latency grow without bound.
//! - **Request coalescing.** Identical concurrent compiles collapse onto
//!   one in-flight compilation via the engine's singleflight layer; the
//!   response reports `"provenance": "coalesced"` and the
//!   `serve.coalesced` / `engine.coalesced` counters record it.
//! - **Hard input limits.** Request-line/header/body bounds and socket
//!   read timeouts turn hostile or broken clients into clean 4xx/408
//!   responses ([`http::Limits`]); a worker never panics on input.
//! - **Graceful drain.** [`ServerHandle::shutdown`] stops admission,
//!   lets in-flight requests finish, then joins every thread.
//!   [`run_until_signal`] wires that to SIGINT/SIGTERM for the CLI.

pub mod api;
pub mod client;
pub mod http;
pub mod queue;

use http::{HttpError, Limits, Request};
use msc_engine::{Engine, EngineOptions};
use msc_obs::json::Json;
use msc_obs::Registry;
use queue::BoundedQueue;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7643` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads serving connections (0 = available parallelism).
    pub workers: usize,
    /// Admission queue depth; beyond it connections are shed with 503.
    pub queue_depth: usize,
    /// Conversion threads *per request* (1 keeps workers independent).
    pub engine_threads: usize,
    /// On-disk compile cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Per-request compile deadline (the engine's cooperative timeout).
    pub job_timeout: Option<Duration>,
    /// HTTP input bounds.
    pub limits: Limits,
    /// Socket read timeout — also the slow-loris bound and the upper
    /// bound on how long shutdown waits for an idle keep-alive peer.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// `Retry-After` seconds hinted on shed requests.
    pub retry_after: u64,
    /// Ceiling on the per-job meta-state explosion guard: every job is
    /// clamped to it, whether or not the request supplies
    /// `max_meta_states`. Also caps `/match` pattern complexity (there
    /// the effective cap is the smaller of this and
    /// [`msc_regex::MAX_META_STATES`]).
    pub max_meta_states: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7643".to_string(),
            workers: 0,
            queue_depth: 64,
            engine_threads: 1,
            cache_dir: None,
            job_timeout: Some(Duration::from_secs(30)),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after: 1,
            max_meta_states: 1 << 20,
        }
    }
}

/// The daemon factory. [`Server::start`] binds, spawns the acceptor and
/// worker pool, and returns the controlling [`ServerHandle`].
pub struct Server;

struct Shared {
    engine: Engine,
    regex: msc_regex::RegexEngine,
    registry: Arc<Registry>,
    queue: BoundedQueue<TcpStream>,
    stop: AtomicBool,
    opts: ServeOptions,
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the threads running detached;
/// call `shutdown` for a graceful drain. The handle also owns the
/// process-global [`msc_obs`] subscriber installation, so it is
/// deliberately not `Send` — control the daemon from the thread that
/// started it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    _obs: msc_obs::InstallGuard,
}

impl Server {
    /// Bind and start serving. Installs the daemon's [`Registry`] as the
    /// process-global [`msc_obs`] subscriber for the handle's lifetime
    /// (the install lock is exclusive: starting a second server in the
    /// same process blocks until the first shuts down).
    pub fn start(opts: ServeOptions) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Registry::new());
        let obs_guard = msc_obs::install(registry.clone());
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            opts.workers
        };
        let shared = Arc::new(Shared {
            engine: Engine::new(EngineOptions {
                threads: opts.engine_threads.max(1),
                cache_dir: opts.cache_dir.clone(),
                job_timeout: opts.job_timeout,
                ..EngineOptions::default()
            }),
            regex: msc_regex::RegexEngine::with_limits(
                msc_regex::engine::DEFAULT_PATTERN_CAPACITY,
                opts.max_meta_states.clamp(1, msc_regex::MAX_META_STATES),
            ),
            registry,
            queue: BoundedQueue::new(opts.queue_depth),
            stop: AtomicBool::new(false),
            opts,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("msc-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("msc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            _obs: obs_guard,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry (what `GET /metrics` renders).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The underlying engine (cache statistics, coalescing counters).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The regex pattern cache behind `POST /match`.
    pub fn regex(&self) -> &msc_regex::RegexEngine {
        &self.shared.regex
    }

    /// Graceful drain: stop admitting, finish everything already
    /// admitted, join all threads. Idle keep-alive peers are released
    /// when their socket read times out, so shutdown can take up to
    /// [`ServeOptions::read_timeout`].
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
        let _ = stream.set_nodelay(true);
        msc_obs::count("serve.accepted", 1);
        if let Err((mut stream, _reason)) = shared.queue.try_push(stream) {
            // Shed: answer on the acceptor thread (cheap — one write)
            // so the queue and workers never see the connection. A
            // `Closed` refusal during shutdown sheds the same way.
            msc_obs::count("serve.shed", 1);
            let err = HttpError::Overloaded {
                retry_after: shared.opts.retry_after,
            };
            let _ = write_error(&mut stream, &err, false);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        handle_connection(shared, stream);
    }
}

fn write_error(stream: &mut TcpStream, err: &HttpError, keep_alive: bool) -> std::io::Result<()> {
    let (status, reason) = err.status();
    let body = Json::obj(vec![
        ("error", Json::from(reason)),
        ("detail", Json::from(err.detail().as_str())),
    ])
    .render();
    let retry: Vec<(&str, String)> = match err {
        HttpError::Overloaded { retry_after } => {
            vec![("Retry-After", retry_after.to_string())]
        }
        _ => Vec::new(),
    };
    http::write_response(
        stream,
        status,
        reason,
        keep_alive,
        &retry,
        "application/json",
        body.as_bytes(),
    )
}

fn write_ok(stream: &mut TcpStream, body: &Json, keep_alive: bool) -> std::io::Result<()> {
    http::write_response(
        stream,
        200,
        "OK",
        keep_alive,
        &[],
        "application/json",
        body.render().as_bytes(),
    )
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match http::parse_request(&mut reader, &shared.opts.limits) {
            Ok(None) => break, // peer closed between requests
            Ok(Some(req)) => {
                let t0 = Instant::now();
                let outcome = route(shared, &req);
                msc_obs::value("serve.request_nanos", t0.elapsed().as_nanos() as u64);
                // Don't hold a drained daemon open on keep-alive.
                let keep_alive = !req.wants_close() && !shared.stop.load(Ordering::SeqCst);
                let io = match outcome {
                    Ok(body) => {
                        msc_obs::count("serve.requests", 1);
                        write_ok(&mut stream, &body, keep_alive)
                    }
                    Err(err) => {
                        msc_obs::count("serve.http_error", 1);
                        write_error(&mut stream, &err, keep_alive)
                    }
                };
                if io.is_err() || !keep_alive {
                    break;
                }
            }
            Err(err) => {
                // The byte stream is in an undefined state after a parse
                // error: answer and drop the connection.
                msc_obs::count("serve.http_error", 1);
                let _ = write_error(&mut stream, &err, false);
                break;
            }
        }
    }
}

fn json_body(req: &Request) -> Result<Json, HttpError> {
    match req.header("content-type") {
        Some(ct)
            if ct
                .split(';')
                .next()
                .is_some_and(|t| t.trim().eq_ignore_ascii_case("application/json")) => {}
        _ => return Err(HttpError::UnsupportedMediaType),
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::BadRequest("body is not UTF-8".to_string()))?;
    msc_obs::json::parse(text)
        .map_err(|e| HttpError::BadRequest(format!("body is not valid JSON: {e}")))
}

fn count_coalesced(body: &Json) {
    let one = |v: &Json| {
        if v.get("provenance").and_then(Json::as_str) == Some("coalesced") {
            msc_obs::count("serve.coalesced", 1);
        }
    };
    match body.get("results").and_then(Json::as_arr) {
        Some(slots) => slots.iter().for_each(one),
        None => one(body),
    }
}

fn route(shared: &Shared, req: &Request) -> Result<Json, HttpError> {
    let known_get = matches!(req.path.as_str(), "/healthz" | "/metrics");
    let known_post = matches!(req.path.as_str(), "/compile" | "/run" | "/batch" | "/match");
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(api::health_response(
            shared.queue.len(),
            shared.stop.load(Ordering::SeqCst),
        )),
        ("GET", "/metrics") => Ok(api::metrics_response(&shared.registry.snapshot())),
        ("POST", "/compile") => {
            let body = json_body(req)?;
            let resp = api::compile(&shared.engine, &body, shared.opts.max_meta_states)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        ("POST", "/run") => {
            let body = json_body(req)?;
            let resp = api::run(&shared.engine, &body, shared.opts.max_meta_states)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        ("POST", "/batch") => {
            let body = json_body(req)?;
            let resp = api::batch(&shared.engine, &body, shared.opts.max_meta_states)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        ("POST", "/match") => {
            let body = json_body(req)?;
            let resp = api::find_matches(&shared.regex, &body)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        _ if known_get || known_post => Err(HttpError::MethodNotAllowed),
        _ => Err(HttpError::NotFound),
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Route SIGINT and SIGTERM to the stop flag. `signal(2)` comes from
    /// libc, which std already links — no new dependency.
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// Serve until SIGINT/SIGTERM, then drain and return. This is what
/// `mscc serve` runs.
#[cfg(unix)]
pub fn run_until_signal(handle: ServerHandle) {
    sig::install();
    while !sig::STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

/// Non-unix fallback: serve until the process is killed.
#[cfg(not(unix))]
pub fn run_until_signal(_handle: ServerHandle) {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
