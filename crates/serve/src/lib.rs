//! # msc-serve — the compile-and-run service daemon
//!
//! Turns the [`msc_engine`] pipeline into a long-lived network service:
//! a dependency-free HTTP/1.1 daemon (std `TcpListener`, hand-rolled
//! parser with hard limits) exposing
//!
//! | endpoint         | semantics                                          |
//! |------------------|----------------------------------------------------|
//! | `POST /compile`  | compile one MIMDC source through the engine cache  |
//! | `POST /run`      | compile + execute on the SIMD simulator            |
//! | `POST /batch`    | compile a set of jobs as one engine batch          |
//! | `POST /match`    | regex over sharded input via the meta-automaton    |
//! | `GET /metrics`   | the aggregated [`msc_obs::Registry`] as JSON       |
//! | `GET /healthz`   | liveness + queue depth                             |
//!
//! The daemon is shaped for sustained load rather than peak benchmarks:
//!
//! - **Event-loop core.** On Linux the daemon runs an epoll readiness
//!   reactor: one thread multiplexes every socket, each
//!   connection an explicit [`conn::State`] machine, so an idle
//!   keep-alive peer costs a table entry instead of a blocked thread.
//!   Compute stays on the worker pool; decoded requests and finished
//!   responses cross over a queue plus a wakeup socketpair. Elsewhere
//!   (or under `MSC_SERVE_BLOCKING=1` /
//!   [`ServeOptions::force_blocking`]) the original blocking
//!   thread-per-connection pool serves instead — same endpoints, same
//!   limits, same tests.
//! - **Bounded admission.** At most `workers + queue_depth` connections
//!   are admitted (the blocking pool's "serving + queued" bound);
//!   beyond that the daemon answers `503` + `Retry-After` immediately
//!   (load shedding) instead of letting latency grow without bound.
//! - **Request coalescing.** Identical concurrent compiles collapse onto
//!   one in-flight compilation via the engine's singleflight layer; the
//!   response reports `"provenance": "coalesced"` and the
//!   `serve.coalesced` / `engine.coalesced` counters record it.
//! - **Hard input limits.** Request-line/header/body bounds and read
//!   deadlines (reactor timers on the event loop, socket timeouts on
//!   the blocking pool) turn hostile or broken clients into clean
//!   4xx/408 responses ([`http::Limits`]); a worker never panics on
//!   input, and a slow-loris peer never pins a worker thread.
//! - **Graceful drain.** [`ServerHandle::shutdown`] stops admitting,
//!   lets in-flight requests finish, then joins every thread.
//!   [`run_until_signal`] wires that to SIGINT/SIGTERM for the CLI.

pub mod api;
pub mod client;
pub mod conn;
pub mod http;
pub mod queue;
#[cfg(target_os = "linux")]
mod reactor;

use http::{HttpError, Limits, Request};
use msc_engine::{Engine, EngineOptions};
use msc_obs::json::Json;
use msc_obs::Registry;
use queue::BoundedQueue;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7643` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads serving connections (0 = available parallelism).
    pub workers: usize,
    /// Admission queue depth; beyond it connections are shed with 503.
    pub queue_depth: usize,
    /// Conversion threads *per request* (1 keeps workers independent).
    pub engine_threads: usize,
    /// On-disk compile cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Per-request compile deadline (the engine's cooperative timeout).
    pub job_timeout: Option<Duration>,
    /// HTTP input bounds.
    pub limits: Limits,
    /// Socket read timeout — also the slow-loris bound and the upper
    /// bound on how long shutdown waits for an idle keep-alive peer.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// `Retry-After` seconds hinted on shed requests.
    pub retry_after: u64,
    /// Ceiling on the per-job meta-state explosion guard: every job is
    /// clamped to it, whether or not the request supplies
    /// `max_meta_states`. Also caps `/match` pattern complexity (there
    /// the effective cap is the smaller of this and
    /// [`msc_regex::MAX_META_STATES`]).
    pub max_meta_states: usize,
    /// Run the blocking thread-per-connection core even where the epoll
    /// reactor is available (`mscc serve --blocking`). The
    /// `MSC_SERVE_BLOCKING` environment variable forces the same.
    pub force_blocking: bool,
    /// Sibling daemons (`host:port`) consulted on local cache misses
    /// before compiling (`mscc serve --peers`). Empty = single node.
    pub peers: Vec<String>,
    /// Deadlines, retry policy and circuit-breaker tuning for the peer
    /// tier.
    pub peer: msc_engine::PeerConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7643".to_string(),
            workers: 0,
            queue_depth: 64,
            engine_threads: 1,
            cache_dir: None,
            job_timeout: Some(Duration::from_secs(30)),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after: 1,
            max_meta_states: 1 << 20,
            force_blocking: false,
            peers: Vec::new(),
            peer: msc_engine::PeerConfig::default(),
        }
    }
}

/// True when this build and environment will use the epoll reactor for
/// new servers (Linux, and `MSC_SERVE_BLOCKING` unset). Benches use
/// this to size worker pools appropriately per mode.
pub fn reactor_available() -> bool {
    cfg!(target_os = "linux") && std::env::var_os("MSC_SERVE_BLOCKING").is_none()
}

/// The daemon factory. [`Server::start`] binds, spawns the acceptor and
/// worker pool, and returns the controlling [`ServerHandle`].
pub struct Server;

/// One unit of worker-pool work.
enum Task {
    /// Blocking mode: a whole admitted connection, served to completion.
    Connection(TcpStream),
    /// Reactor mode: one decoded request; the reactor keeps the socket.
    #[cfg(target_os = "linux")]
    Request {
        /// Connection identity (guards against fd reuse).
        conn_id: u64,
        /// The reactor-side socket the response belongs to.
        fd: i32,
        request: Request,
    },
}

struct Shared {
    engine: Engine,
    regex: msc_regex::RegexEngine,
    registry: Arc<Registry>,
    queue: BoundedQueue<Task>,
    stop: AtomicBool,
    /// Connections currently admitted (gauge on `/metrics`).
    open_conns: AtomicUsize,
    /// Admission bound: `workers + queue_depth` in both modes.
    admit_capacity: usize,
    #[cfg(target_os = "linux")]
    reactor: Option<reactor::ReactorShared>,
    opts: ServeOptions,
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the threads running detached;
/// call `shutdown` for a graceful drain. The handle also owns the
/// process-global [`msc_obs`] subscriber installation, so it is
/// deliberately not `Send` — control the daemon from the thread that
/// started it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// The acceptor thread (blocking mode) or the reactor thread.
    driver: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    blocking: bool,
    _obs: msc_obs::InstallGuard,
}

impl Server {
    /// Bind and start serving. Installs the daemon's [`Registry`] as the
    /// process-global [`msc_obs`] subscriber for the handle's lifetime
    /// (the install lock is exclusive: starting a second server in the
    /// same process blocks until the first shuts down).
    ///
    /// Picks the epoll reactor core where available (see
    /// [`reactor_available`]); otherwise — or when forced — the blocking
    /// thread-per-connection core.
    pub fn start(opts: ServeOptions) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Registry::new());
        let obs_guard = msc_obs::install(registry.clone());
        let blocking = opts.force_blocking || !reactor_available();
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            opts.workers
        };
        // Blocking mode queues whole connections behind the worker pool
        // (capacity = queue_depth, the historical bound); the reactor
        // queues at most one decoded request per admitted connection,
        // so its queue never rejects below the admission cap.
        let admit_capacity = workers + opts.queue_depth;
        let queue_capacity = if blocking {
            opts.queue_depth
        } else {
            admit_capacity
        };
        #[cfg(target_os = "linux")]
        let reactor_shared = if blocking {
            None
        } else {
            Some(reactor::ReactorShared::new()?)
        };
        let shared = Arc::new(Shared {
            engine: Engine::new(EngineOptions {
                threads: opts.engine_threads.max(1),
                cache_dir: opts.cache_dir.clone(),
                job_timeout: opts.job_timeout,
                peers: opts.peers.clone(),
                peer: opts.peer.clone(),
                ..EngineOptions::default()
            }),
            regex: msc_regex::RegexEngine::with_limits(
                msc_regex::engine::DEFAULT_PATTERN_CAPACITY,
                opts.max_meta_states.clamp(1, msc_regex::MAX_META_STATES),
            ),
            registry,
            queue: BoundedQueue::new(queue_capacity),
            stop: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            admit_capacity,
            #[cfg(target_os = "linux")]
            reactor: reactor_shared,
            opts,
        });

        let driver = if blocking {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("msc-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))?
        } else {
            spawn_reactor(&shared, listener)?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("msc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(ServerHandle {
            addr,
            shared,
            driver: Some(driver),
            workers: worker_handles,
            blocking,
            _obs: obs_guard,
        })
    }
}

#[cfg(target_os = "linux")]
fn spawn_reactor(
    shared: &Arc<Shared>,
    listener: TcpListener,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("msc-serve-reactor".to_string())
        .spawn(move || reactor::run(shared, listener))
}

#[cfg(not(target_os = "linux"))]
fn spawn_reactor(
    _shared: &Arc<Shared>,
    _listener: TcpListener,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    unreachable!("reactor_available() gates the reactor to Linux")
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry (what `GET /metrics` renders).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The underlying engine (cache statistics, coalescing counters).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The regex pattern cache behind `POST /match`.
    pub fn regex(&self) -> &msc_regex::RegexEngine {
        &self.shared.regex
    }

    /// Graceful drain: stop admitting, finish everything already
    /// admitted, join all threads. The reactor drops idle peers
    /// immediately; a peer mid-request is granted up to
    /// [`ServeOptions::read_timeout`] to finish sending, so shutdown is
    /// bounded by that (the blocking core has the same bound, via its
    /// socket timeout).
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if self.blocking {
            // Wake the acceptor out of accept() with a throwaway
            // connection.
            let _ = TcpStream::connect(self.addr);
        } else {
            #[cfg(target_os = "linux")]
            if let Some(r) = &self.shared.reactor {
                r.wake();
            }
        }
        if let Some(d) = self.driver.take() {
            let _ = d.join();
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
        let _ = stream.set_nodelay(true);
        msc_obs::count("serve.accepted", 1);
        if let Err((task, _reason)) = shared.queue.try_push(Task::Connection(stream)) {
            // Shed: answer on the acceptor thread (cheap — one write)
            // so the queue and workers never see the connection. A
            // `Closed` refusal during shutdown sheds the same way.
            let Task::Connection(mut stream) = task else {
                continue;
            };
            msc_obs::count("serve.shed", 1);
            let err = HttpError::Overloaded {
                retry_after: shared.opts.retry_after,
            };
            let _ = write_error(&mut stream, &err, false);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(task) = shared.queue.pop() {
        match task {
            Task::Connection(stream) => handle_connection(shared, stream),
            #[cfg(target_os = "linux")]
            Task::Request {
                conn_id,
                fd,
                request,
            } => reactor::execute(shared, conn_id, fd, request),
        }
    }
}

/// Render an error response to bytes (the reactor writes them as the
/// socket accepts; the blocking path writes them directly).
#[cfg(target_os = "linux")]
fn render_error(err: &HttpError, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = write_error(&mut out, err, keep_alive); // Vec writes are infallible
    out
}

/// Render a 200 response to bytes.
#[cfg(target_os = "linux")]
fn render_ok(body: &Json, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = write_ok(&mut out, body, keep_alive);
    out
}

fn write_error<W: Write>(stream: &mut W, err: &HttpError, keep_alive: bool) -> std::io::Result<()> {
    let (status, reason) = err.status();
    let body = Json::obj(vec![
        ("error", Json::from(reason)),
        ("detail", Json::from(err.detail().as_str())),
    ])
    .render();
    let retry: Vec<(&str, String)> = match err {
        HttpError::Overloaded { retry_after } => {
            vec![("Retry-After", retry_after.to_string())]
        }
        _ => Vec::new(),
    };
    http::write_response(
        stream,
        status,
        reason,
        keep_alive,
        &retry,
        "application/json",
        body.as_bytes(),
    )
}

fn write_ok<W: Write>(stream: &mut W, body: &Json, keep_alive: bool) -> std::io::Result<()> {
    http::write_response(
        stream,
        200,
        "OK",
        keep_alive,
        &[],
        "application/json",
        body.render().as_bytes(),
    )
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.open_conns.fetch_add(1, Ordering::SeqCst);
    // Balance the gauge on every exit path.
    struct Gauge<'a>(&'a AtomicUsize);
    impl Drop for Gauge<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _gauge = Gauge(&shared.open_conns);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match http::parse_request(&mut reader, &shared.opts.limits) {
            Ok(None) => break, // peer closed between requests
            Ok(Some(req)) => {
                let t0 = Instant::now();
                let outcome = route(shared, &req);
                msc_obs::value("serve.request_nanos", t0.elapsed().as_nanos() as u64);
                // Don't hold a drained daemon open on keep-alive.
                let keep_alive = !req.wants_close() && !shared.stop.load(Ordering::SeqCst);
                let io = match outcome {
                    Ok(body) => {
                        msc_obs::count("serve.requests", 1);
                        write_ok(&mut stream, &body, keep_alive)
                    }
                    Err(err) => {
                        msc_obs::count("serve.http_error", 1);
                        write_error(&mut stream, &err, keep_alive)
                    }
                };
                if io.is_err() || !keep_alive {
                    break;
                }
            }
            Err(err) => {
                // The byte stream is in an undefined state after a parse
                // error: answer and drop the connection.
                msc_obs::count("serve.http_error", 1);
                let _ = write_error(&mut stream, &err, false);
                break;
            }
        }
    }
}

fn json_body(req: &Request) -> Result<Json, HttpError> {
    match req.header("content-type") {
        Some(ct)
            if ct
                .split(';')
                .next()
                .is_some_and(|t| t.trim().eq_ignore_ascii_case("application/json")) => {}
        _ => return Err(HttpError::UnsupportedMediaType),
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::BadRequest("body is not UTF-8".to_string()))?;
    msc_obs::json::parse(text)
        .map_err(|e| HttpError::BadRequest(format!("body is not valid JSON: {e}")))
}

fn count_coalesced(body: &Json) {
    let one = |v: &Json| {
        if v.get("provenance").and_then(Json::as_str) == Some("coalesced") {
            msc_obs::count("serve.coalesced", 1);
        }
    };
    match body.get("results").and_then(Json::as_arr) {
        Some(slots) => slots.iter().for_each(one),
        None => one(body),
    }
}

/// Point-in-time gauges describing the peer tier (if configured):
/// peer count plus per-breaker-state tallies. Flat counters so they sit
/// next to the serve gauges on `/metrics`.
fn peer_gauges(shared: &Shared) -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();
    for tier in shared.engine.tier_status() {
        if let msc_engine::TierStatus::Peers { peers, .. } = tier {
            let mut closed = 0u64;
            let mut open = 0u64;
            let mut half_open = 0u64;
            for p in &peers {
                match p.breaker {
                    msc_engine::BreakerState::Closed => closed += 1,
                    msc_engine::BreakerState::Open => open += 1,
                    msc_engine::BreakerState::HalfOpen => half_open += 1,
                }
            }
            out.push(("cache.peers", peers.len() as u64));
            out.push(("cache.peer_breaker_closed", closed));
            out.push(("cache.peer_breaker_open", open));
            out.push(("cache.peer_breaker_half_open", half_open));
        }
    }
    out
}

fn route(shared: &Shared, req: &Request) -> Result<Json, HttpError> {
    let known_get =
        matches!(req.path.as_str(), "/healthz" | "/metrics") || req.path.starts_with("/artifact/");
    let known_post = matches!(req.path.as_str(), "/compile" | "/run" | "/batch" | "/match");
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(api::health_response(
            shared.queue.len(),
            shared.stop.load(Ordering::SeqCst),
            &shared.engine.tier_status(),
        )),
        ("GET", "/metrics") => {
            let mut gauges = vec![
                (
                    "serve.open_connections",
                    shared.open_conns.load(Ordering::SeqCst) as u64,
                ),
                ("serve.queued", shared.queue.len() as u64),
                ("serve.admit_capacity", shared.admit_capacity as u64),
            ];
            gauges.extend(peer_gauges(shared));
            Ok(api::metrics_response(&shared.registry.snapshot(), &gauges))
        }
        ("GET", p) if p.starts_with("/artifact/") => {
            api::artifact(&shared.engine, &p["/artifact/".len()..])
        }
        ("POST", "/compile") => {
            let body = json_body(req)?;
            let resp = api::compile(&shared.engine, &body, shared.opts.max_meta_states)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        ("POST", "/run") => {
            let body = json_body(req)?;
            let resp = api::run(&shared.engine, &body, shared.opts.max_meta_states)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        ("POST", "/batch") => {
            let body = json_body(req)?;
            let resp = api::batch(&shared.engine, &body, shared.opts.max_meta_states)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        ("POST", "/match") => {
            let body = json_body(req)?;
            let resp = api::find_matches(&shared.regex, &body)?;
            count_coalesced(&resp);
            Ok(resp)
        }
        _ if known_get || known_post => Err(HttpError::MethodNotAllowed),
        _ => Err(HttpError::NotFound),
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Route SIGINT and SIGTERM to the stop flag. `signal(2)` comes from
    /// libc, which std already links — no new dependency.
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// Serve until SIGINT/SIGTERM, then drain and return. This is what
/// `mscc serve` runs.
#[cfg(unix)]
pub fn run_until_signal(handle: ServerHandle) {
    sig::install();
    while !sig::STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

/// Non-unix fallback: serve until the process is killed.
#[cfg(not(unix))]
pub fn run_until_signal(_handle: ServerHandle) {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
