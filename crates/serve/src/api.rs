//! Endpoint semantics: JSON in, pipeline call, JSON out.
//!
//! The wire schema is a thin skin over [`msc_engine::Job`]: a request
//! object carries `source` plus optional knobs (`mode`, `optimize`,
//! `minimize`, `csi`, `time_split`, `max_meta_states`), and responses
//! report provenance so a client can see whether its compile was fresh,
//! cached, or coalesced onto a concurrent identical request. All JSON
//! goes through the dependency-free [`msc_obs::json`] module.

use crate::http::HttpError;
use msc_core::{ConvertMode, TimeSplitOptions};
use msc_engine::{job_key, CacheKey, Compiled, Engine, Job, Provenance, TierStatus};
use msc_obs::json::Json;
use msc_obs::MetricsSnapshot;
use msc_regex::RegexEngine;
use msc_simd::{MachineConfig, SimdMachine};

/// Hard cap on simulated PEs per `/run` request.
pub const MAX_PES: usize = 4096;
/// Hard cap on `/match` pattern length in bytes (413 beyond it).
pub const MAX_PATTERN_BYTES: usize = 4096;
/// Hard cap on `/match` shard count per request (413 beyond it).
pub const MAX_SHARDS: usize = 256;
/// Hard cap on `/match` scan threads (larger requests are clamped).
pub const MAX_MATCH_THREADS: usize = 16;
/// Hard cap on the per-request simulator cycle budget.
pub const MAX_CYCLES: u64 = 100_000_000;
/// Default simulated PEs when the request does not say.
pub const DEFAULT_PES: usize = 8;
/// Default cycle budget — small enough that a runaway program cannot
/// pin a worker for long.
pub const DEFAULT_MAX_CYCLES: u64 = 10_000_000;

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError::BadRequest(msg.into())
}

fn opt_bool(v: &Json, key: &str, default: bool) -> Result<bool, HttpError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| bad(format!("`{key}` must be a boolean"))),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, HttpError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

/// Decode one job object. Unknown keys are ignored (forward
/// compatibility); known keys with the wrong type are 400s.
/// `max_meta_states` is the server-side ceiling on the explosion guard
/// ([`crate::ServeOptions::max_meta_states`]): a request-supplied value
/// is clamped to it, and a job that omits the knob is capped by it too.
pub fn job_from_json(
    v: &Json,
    default_name: &str,
    max_meta_states: usize,
) -> Result<Job, HttpError> {
    if v.as_obj().is_none() {
        return Err(bad("request body must be a JSON object"));
    }
    let source = v
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`source` (string) is required"))?;
    let name = match v.get("name") {
        None | Some(Json::Null) => default_name,
        Some(n) => n.as_str().ok_or_else(|| bad("`name` must be a string"))?,
    };
    let mut job = Job::new(name, source);
    match v.get("mode").and_then(Json::as_str) {
        None => {}
        Some("base") => job.convert.mode = ConvertMode::Base,
        Some("compressed") => {
            job.convert = msc_core::ConvertOptions::compressed();
        }
        Some(other) => {
            return Err(bad(format!(
                "`mode` must be \"base\" or \"compressed\", got {other:?}"
            )))
        }
    }
    job.optimize = opt_bool(v, "optimize", false)?;
    job.minimize = opt_bool(v, "minimize", false)?;
    job.gen.csi = opt_bool(v, "csi", true)?;
    if opt_bool(v, "time_split", false)? {
        job.convert.time_split = Some(TimeSplitOptions::default());
    }
    let ceiling = max_meta_states.max(1);
    if let Some(n) = opt_u64(v, "max_meta_states")? {
        job.convert.max_meta_states = (n as usize).clamp(1, ceiling);
    } else {
        job.convert.max_meta_states = job.convert.max_meta_states.min(ceiling);
    }
    Ok(job)
}

fn provenance_str(p: Provenance) -> &'static str {
    match p {
        Provenance::Fresh => "fresh",
        Provenance::Memory => "memory",
        Provenance::Disk => "disk",
        Provenance::Coalesced => "coalesced",
        Provenance::Peer => "peer",
    }
}

/// The `/compile` response object for one compiled job.
pub fn compile_response(job: &Job, compiled: &Compiled) -> Json {
    let a = &compiled.artifact;
    let t = &a.timings;
    Json::obj(vec![
        ("name", Json::from(job.name.as_str())),
        ("key", Json::from(job_key(job).hex())),
        (
            "provenance",
            Json::from(provenance_str(compiled.provenance)),
        ),
        ("meta_states", Json::from(a.meta_states)),
        ("blocks", Json::from(a.simd.blocks.len())),
        (
            "stats",
            Json::obj(vec![
                ("restarts", Json::from(a.stats.restarts as u64)),
                ("splits", Json::from(a.stats.splits as u64)),
                ("subsumed", Json::from(a.stats.subsumed as u64)),
            ]),
        ),
        (
            "timings_us",
            Json::obj(vec![
                ("compile", Json::from(t.compile.as_micros() as u64)),
                ("convert", Json::from(t.convert.as_micros() as u64)),
                ("codegen", Json::from(t.codegen.as_micros() as u64)),
            ]),
        ),
    ])
}

fn engine_error(e: msc_engine::EngineError) -> HttpError {
    HttpError::Unprocessable(e.to_string())
}

/// `POST /compile`.
pub fn compile(engine: &Engine, body: &Json, max_meta_states: usize) -> Result<Json, HttpError> {
    let job = job_from_json(body, "request", max_meta_states)?;
    let compiled = engine.compile(&job).map_err(engine_error)?;
    Ok(compile_response(&job, &compiled))
}

/// `POST /run`: compile (through the cache) then execute on the SIMD
/// simulator, returning per-PE results and cycle metrics.
pub fn run(engine: &Engine, body: &Json, max_meta_states: usize) -> Result<Json, HttpError> {
    let job = job_from_json(body, "request", max_meta_states)?;
    let pes = match opt_u64(body, "pes")? {
        None => DEFAULT_PES,
        Some(0) => return Err(bad("`pes` must be at least 1")),
        Some(n) if n as usize > MAX_PES => {
            return Err(bad(format!("`pes` is capped at {MAX_PES}")))
        }
        Some(n) => n as usize,
    };
    let active = match opt_u64(body, "active")? {
        None => pes,
        Some(0) => return Err(bad("`active` must be at least 1")),
        Some(n) if n as usize > pes => return Err(bad("`active` cannot exceed `pes`")),
        Some(n) => n as usize,
    };
    let max_cycles = opt_u64(body, "max_cycles")?
        .unwrap_or(DEFAULT_MAX_CYCLES)
        .clamp(1, MAX_CYCLES);

    let compiled = engine.compile(&job).map_err(engine_error)?;
    let artifact = &compiled.artifact;
    let mut config = MachineConfig::with_pool(pes, active);
    config.max_cycles = max_cycles;
    let mut machine = SimdMachine::new(&artifact.simd, &config);
    let metrics = machine
        .run(&artifact.simd, &config)
        .map_err(|e| HttpError::Unprocessable(format!("execution failed: {e}")))?;

    let results = match artifact.ret_addr {
        Some(addr) => Json::Arr(
            (0..pes)
                .map(|pe| Json::from(machine.poly_at(pe, addr)))
                .collect(),
        ),
        None => Json::Null,
    };
    Ok(Json::obj(vec![
        ("name", Json::from(job.name.as_str())),
        (
            "provenance",
            Json::from(provenance_str(compiled.provenance)),
        ),
        ("meta_states", Json::from(artifact.meta_states)),
        ("pes", Json::from(pes)),
        ("results", results),
        (
            "metrics",
            Json::obj(vec![
                ("cycles", Json::from(metrics.cycles)),
                ("issues", Json::from(metrics.issues)),
                ("dispatches", Json::from(metrics.dispatches)),
                ("utilization", Json::from(metrics.utilization())),
            ]),
        ),
    ]))
}

/// `POST /batch`: `{"jobs": [...]}` compiled as one engine batch. Per-job
/// failures land in the matching response slot; the batch itself is 200.
pub fn batch(engine: &Engine, body: &Json, max_meta_states: usize) -> Result<Json, HttpError> {
    let jobs_json = body
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("`jobs` (array) is required"))?;
    if jobs_json.is_empty() {
        return Err(bad("`jobs` must not be empty"));
    }
    let jobs = jobs_json
        .iter()
        .enumerate()
        .map(|(i, v)| job_from_json(v, &format!("job-{i}"), max_meta_states))
        .collect::<Result<Vec<_>, _>>()?;
    let results = engine.compile_many(&jobs);
    let mut ok = 0usize;
    let slots: Vec<Json> = results
        .iter()
        .zip(&jobs)
        .map(|(r, job)| match r {
            Ok(c) => {
                ok += 1;
                compile_response(job, c)
            }
            Err(e) => Json::obj(vec![
                ("name", Json::from(job.name.as_str())),
                ("error", Json::from(e.to_string())),
            ]),
        })
        .collect();
    Ok(Json::obj(vec![
        ("jobs", Json::from(slots.len())),
        ("succeeded", Json::from(ok)),
        ("results", Json::Arr(slots)),
    ]))
}

/// `GET /metrics`: the daemon's aggregated observability registry, plus
/// point-in-time gauges (open connections, queue depth) the registry's
/// monotonic counters cannot express.
pub fn metrics_response(snap: &MetricsSnapshot, gauges: &[(&str, u64)]) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), Json::from(*v)))
        .collect();
    let hists = snap
        .hists
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                Json::obj(vec![
                    ("count", Json::from(h.count)),
                    ("mean", Json::from(h.mean())),
                    ("min", Json::from(if h.count == 0 { 0 } else { h.min })),
                    ("max", Json::from(h.max)),
                ]),
            )
        })
        .collect();
    let spans = snap
        .spans
        .iter()
        .map(|(name, s)| {
            (
                name.clone(),
                Json::obj(vec![
                    ("count", Json::from(s.count)),
                    ("total_nanos", Json::from(s.total_nanos)),
                    ("max_nanos", Json::from(s.max_nanos)),
                ]),
            )
        })
        .collect();
    let gauges = gauges
        .iter()
        .map(|(name, v)| (name.to_string(), Json::from(*v)))
        .collect();
    Json::Obj(vec![
        ("counters".to_string(), Json::Obj(counters)),
        ("histograms".to_string(), Json::Obj(hists)),
        ("spans".to_string(), Json::Obj(spans)),
        ("gauges".to_string(), Json::Obj(gauges)),
    ])
}

/// `POST /match`: compile the pattern through the regex cache (with
/// singleflight coalescing) and scan the shards as one concatenated
/// input. Spans are reported per shard, relative to the shard holding the
/// match's *start*; a span's `end` exceeds that shard's length exactly
/// when the match crosses shard boundaries. Results are bit-identical for
/// every `threads` value.
pub fn find_matches(regex: &RegexEngine, body: &Json) -> Result<Json, HttpError> {
    if body.as_obj().is_none() {
        return Err(bad("request body must be a JSON object"));
    }
    let pattern = body
        .get("pattern")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`pattern` (string) is required"))?;
    if pattern.len() > MAX_PATTERN_BYTES {
        return Err(HttpError::PayloadTooLarge {
            limit: MAX_PATTERN_BYTES,
        });
    }
    let shard_values = body
        .get("shards")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("`shards` (array of strings) is required"))?;
    if shard_values.len() > MAX_SHARDS {
        return Err(HttpError::PayloadTooLarge { limit: MAX_SHARDS });
    }
    let shards: Vec<&[u8]> = shard_values
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::as_bytes)
                .ok_or_else(|| bad("`shards` entries must be strings"))
        })
        .collect::<Result<_, _>>()?;
    let threads = match opt_u64(body, "threads")? {
        None | Some(0) => 1,
        Some(n) => (n as usize).min(MAX_MATCH_THREADS),
    };
    let (re, provenance) = regex
        .get(pattern)
        .map_err(|e| HttpError::Unprocessable(e.to_string()))?;
    let matches = re.find_sharded(&shards, threads);
    msc_obs::count("regex.requests", 1);
    msc_obs::count("regex.matches", matches.len() as u64);

    // Bucket each match into the shard containing its start, converting
    // to shard-relative offsets. `starts` carries a total-length sentinel
    // so partition_point addresses the final shard.
    let mut starts = Vec::with_capacity(shards.len() + 1);
    let mut off = 0usize;
    for s in &shards {
        starts.push(off);
        off += s.len();
    }
    starts.push(off);
    let mut per_shard: Vec<Vec<Json>> = shards.iter().map(|_| Vec::new()).collect();
    for m in &matches {
        let idx = starts.partition_point(|&s| s <= m.start).saturating_sub(1);
        let idx = idx.min(per_shard.len().saturating_sub(1));
        per_shard[idx].push(Json::obj(vec![
            ("start", Json::from(m.start - starts[idx])),
            ("end", Json::from(m.end - starts[idx])),
        ]));
    }
    let shard_objs: Vec<Json> = per_shard
        .into_iter()
        .enumerate()
        .map(|(i, ms)| Json::obj(vec![("index", Json::from(i)), ("matches", Json::Arr(ms))]))
        .collect();
    Ok(Json::obj(vec![
        ("pattern", Json::from(pattern)),
        ("provenance", Json::from(provenance_str(provenance))),
        ("meta_states", Json::from(re.meta_states())),
        ("total_matches", Json::from(matches.len())),
        ("shards", Json::Arr(shard_objs)),
    ]))
}

/// `GET /artifact/{key}`: serve a cached artifact out of the local
/// tiers (memory, then raw disk). Never compiles — a fleet fetch must
/// not trigger work on the donor — so an absent key is a plain 404. The
/// response is the verification envelope the peer tier checks
/// ([`msc_cache::wire`]): `{key, sum, artifact}`.
pub fn artifact(engine: &Engine, key_hex: &str) -> Result<Json, HttpError> {
    let key = CacheKey::from_hex(key_hex).ok_or_else(|| {
        bad(format!(
            "malformed artifact key {key_hex:?}: expected 32 lowercase hex digits"
        ))
    })?;
    match engine.export_artifact(key) {
        Some(text) => {
            msc_obs::count("serve.artifact_hit", 1);
            Ok(msc_cache::wire::envelope(key, &text))
        }
        None => {
            msc_obs::count("serve.artifact_miss", 1);
            Err(HttpError::NotFound)
        }
    }
}

fn tier_json(tier: &TierStatus) -> Json {
    match tier {
        TierStatus::Memory {
            entries,
            capacity,
            evictions,
        } => Json::obj(vec![
            ("tier", Json::from("memory")),
            ("entries", Json::from(*entries)),
            ("capacity", Json::from(*capacity)),
            ("evictions", Json::from(*evictions)),
        ]),
        TierStatus::Disk { dir } => Json::obj(vec![
            ("tier", Json::from("disk")),
            ("dir", Json::from(dir.as_str())),
        ]),
        TierStatus::Peers {
            peers,
            total_deadline,
        } => Json::obj(vec![
            ("tier", Json::from("peers")),
            (
                "total_deadline_ms",
                Json::from(total_deadline.as_millis() as u64),
            ),
            (
                "peers",
                Json::Arr(
                    peers
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("addr", Json::from(p.addr.as_str())),
                                ("breaker", Json::from(p.breaker.as_str())),
                                (
                                    "consecutive_failures",
                                    Json::from(u64::from(p.consecutive_failures)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// `GET /healthz`: liveness, queue depth, and per-tier cache status —
/// including each peer's circuit-breaker state, so an operator can see
/// which siblings a node currently trusts.
pub fn health_response(queued: usize, draining: bool, tiers: &[TierStatus]) -> Json {
    Json::obj(vec![
        (
            "status",
            Json::from(if draining { "draining" } else { "ok" }),
        ),
        ("queued", Json::from(queued)),
        ("cache", Json::Arr(tiers.iter().map(tier_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_engine::EngineOptions;
    use msc_obs::json;

    const PROG: &str = "main() { poly int x; x = pe_id() * 2 + 1; return(x); }";

    fn body(s: &str) -> Json {
        json::parse(s).unwrap()
    }

    #[test]
    fn job_mapping_covers_the_knobs() {
        let v = body(
            r#"{"source":"main() { return(1); }","name":"n","mode":"compressed",
                "optimize":true,"minimize":true,"csi":false,"time_split":true}"#,
        );
        let job = job_from_json(&v, "d", 1 << 20).unwrap();
        assert_eq!(job.name, "n");
        assert_eq!(job.convert.mode, ConvertMode::Compressed);
        assert!(job.convert.subsumption);
        assert!(job.optimize && job.minimize);
        assert!(!job.gen.csi);
        assert!(job.convert.time_split.is_some());
    }

    #[test]
    fn job_mapping_clamps_guard_to_server_ceiling() {
        // A request-supplied guard above the server ceiling is clamped.
        let v = body(r#"{"source":"x","max_meta_states":999999}"#);
        let job = job_from_json(&v, "d", 100).unwrap();
        assert_eq!(job.convert.max_meta_states, 100);
        // Below the ceiling it is honored (floored at 1).
        let v = body(r#"{"source":"x","max_meta_states":7}"#);
        assert_eq!(
            job_from_json(&v, "d", 100).unwrap().convert.max_meta_states,
            7
        );
        let v = body(r#"{"source":"x","max_meta_states":0}"#);
        assert_eq!(
            job_from_json(&v, "d", 100).unwrap().convert.max_meta_states,
            1
        );
        // Jobs that omit the knob are capped by the ceiling too.
        let v = body(r#"{"source":"x"}"#);
        let default_guard = msc_engine::Job::new("d", "x").convert.max_meta_states;
        let job = job_from_json(&v, "d", 100).unwrap();
        assert_eq!(job.convert.max_meta_states, default_guard.min(100));
    }

    #[test]
    fn job_mapping_rejects_bad_shapes() {
        for raw in [
            r#"{}"#,
            r#"{"source":7}"#,
            r#"{"source":"x","mode":"turbo"}"#,
            r#"{"source":"x","optimize":"yes"}"#,
            r#"[1,2]"#,
        ] {
            assert!(
                matches!(
                    job_from_json(&body(raw), "d", 1 << 20),
                    Err(HttpError::BadRequest(_))
                ),
                "{raw}"
            );
        }
    }

    #[test]
    fn run_returns_per_pe_results() {
        let engine = Engine::new(EngineOptions::default());
        let v = body(&format!(r#"{{"source":{:?},"pes":4}}"#, PROG));
        let out = run(&engine, &v, 1 << 20).unwrap();
        let results = out.get("results").and_then(Json::as_arr).unwrap();
        let got: Vec<i64> = results.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![1, 3, 5, 7]);
        assert!(
            out.get("metrics")
                .unwrap()
                .get("cycles")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(out.get("provenance").unwrap().as_str(), Some("fresh"));
    }

    #[test]
    fn run_validates_pe_bounds() {
        let engine = Engine::new(EngineOptions::default());
        for raw in [
            format!(r#"{{"source":{PROG:?},"pes":0}}"#),
            format!(r#"{{"source":{PROG:?},"pes":1000000}}"#),
            format!(r#"{{"source":{PROG:?},"pes":2,"active":3}}"#),
        ] {
            assert!(
                matches!(
                    run(&engine, &body(&raw), 1 << 20),
                    Err(HttpError::BadRequest(_))
                ),
                "{raw}"
            );
        }
    }

    #[test]
    fn compile_error_is_unprocessable() {
        let engine = Engine::new(EngineOptions::default());
        let v = body(r#"{"source":"main() { y = 1; }"}"#);
        assert!(matches!(
            compile(&engine, &v, 1 << 20),
            Err(HttpError::Unprocessable(_))
        ));
    }

    #[test]
    fn batch_isolates_failures() {
        let engine = Engine::new(EngineOptions::default());
        let v = body(&format!(
            r#"{{"jobs":[{{"source":{PROG:?}}},{{"source":"broken("}}]}}"#
        ));
        let out = batch(&engine, &v, 1 << 20).unwrap();
        assert_eq!(out.get("jobs").unwrap().as_u64(), Some(2));
        assert_eq!(out.get("succeeded").unwrap().as_u64(), Some(1));
        let slots = out.get("results").and_then(Json::as_arr).unwrap();
        assert!(slots[0].get("provenance").is_some());
        assert!(slots[1].get("error").is_some());
    }

    #[test]
    fn second_compile_reports_cache_provenance() {
        let engine = Engine::new(EngineOptions::default());
        let v = body(&format!(r#"{{"source":{PROG:?}}}"#));
        assert_eq!(
            compile(&engine, &v, 1 << 20)
                .unwrap()
                .get("provenance")
                .unwrap()
                .as_str(),
            Some("fresh")
        );
        assert_eq!(
            compile(&engine, &v, 1 << 20)
                .unwrap()
                .get("provenance")
                .unwrap()
                .as_str(),
            Some("memory")
        );
    }

    #[test]
    fn match_returns_per_shard_relative_spans() {
        let regex = RegexEngine::default();
        let v = body(r#"{"pattern":"ab","shards":["xab","ab"],"threads":2}"#);
        let out = find_matches(&regex, &v).unwrap();
        assert_eq!(out.get("total_matches").unwrap().as_u64(), Some(2));
        assert_eq!(out.get("provenance").unwrap().as_str(), Some("fresh"));
        let shards = out.get("shards").and_then(Json::as_arr).unwrap();
        let m0 = shards[0].get("matches").and_then(Json::as_arr).unwrap();
        assert_eq!(
            (
                m0[0].get("start").unwrap().as_u64(),
                m0[0].get("end").unwrap().as_u64()
            ),
            (Some(1), Some(3))
        );
        let m1 = shards[1].get("matches").and_then(Json::as_arr).unwrap();
        assert_eq!(
            (
                m1[0].get("start").unwrap().as_u64(),
                m1[0].get("end").unwrap().as_u64()
            ),
            (Some(0), Some(2))
        );
    }

    #[test]
    fn match_reports_boundary_spanning_in_the_start_shard() {
        let regex = RegexEngine::default();
        let v = body(r#"{"pattern":"a+","shards":["xaa","aay"]}"#);
        let out = find_matches(&regex, &v).unwrap();
        assert_eq!(out.get("total_matches").unwrap().as_u64(), Some(1));
        let shards = out.get("shards").and_then(Json::as_arr).unwrap();
        let m0 = shards[0].get("matches").and_then(Json::as_arr).unwrap();
        // Relative to shard 0; end runs past its length (boundary span).
        assert_eq!(
            (
                m0[0].get("start").unwrap().as_u64(),
                m0[0].get("end").unwrap().as_u64()
            ),
            (Some(1), Some(5))
        );
        assert!(shards[1]
            .get("matches")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn match_second_request_hits_the_pattern_cache() {
        let regex = RegexEngine::default();
        let v = body(r#"{"pattern":"a+","shards":["aa"]}"#);
        assert_eq!(
            find_matches(&regex, &v)
                .unwrap()
                .get("provenance")
                .unwrap()
                .as_str(),
            Some("fresh")
        );
        assert_eq!(
            find_matches(&regex, &v)
                .unwrap()
                .get("provenance")
                .unwrap()
                .as_str(),
            Some("memory")
        );
    }

    #[test]
    fn match_rejects_bad_shapes() {
        let regex = RegexEngine::default();
        for raw in [
            r#"[]"#,
            r#"{}"#,
            r#"{"pattern":7,"shards":[]}"#,
            r#"{"pattern":"a"}"#,
            r#"{"pattern":"a","shards":"x"}"#,
            r#"{"pattern":"a","shards":[7]}"#,
            r#"{"pattern":"a","shards":["x"],"threads":"two"}"#,
        ] {
            let v = body(raw);
            assert!(
                matches!(find_matches(&regex, &v), Err(HttpError::BadRequest(_))),
                "shape {raw} must be a 400"
            );
        }
    }

    #[test]
    fn match_caps_are_413_and_syntax_errors_422() {
        let regex = RegexEngine::default();
        let long = "a".repeat(MAX_PATTERN_BYTES + 1);
        let v = body(&format!(r#"{{"pattern":"{long}","shards":["x"]}}"#));
        assert!(matches!(
            find_matches(&regex, &v),
            Err(HttpError::PayloadTooLarge {
                limit: MAX_PATTERN_BYTES
            })
        ));
        let many = vec!["\"x\""; MAX_SHARDS + 1].join(",");
        let v = body(&format!(r#"{{"pattern":"a","shards":[{many}]}}"#));
        assert!(matches!(
            find_matches(&regex, &v),
            Err(HttpError::PayloadTooLarge { limit: MAX_SHARDS })
        ));
        let v = body(r#"{"pattern":"a(","shards":["x"]}"#);
        assert!(matches!(
            find_matches(&regex, &v),
            Err(HttpError::Unprocessable(_))
        ));
    }
}
