//! The epoll readiness reactor: one thread drives every connection.
//!
//! The reactor owns the listener and all sockets. It multiplexes them
//! through `epoll(7)` — declared directly against libc, which std
//! already links, keeping the stack dependency-free — and advances each
//! connection's [`Conn`] state machine as readiness allows. Compute
//! never runs here: a decoded request is pushed to the worker pool as a
//! [`Task::Request`], and the finished response comes back through the
//! completion queue plus a wakeup byte on a `UnixStream` pair (any
//! worker can write to its end without locking the reactor).
//!
//! Timeouts are reactor timers, not socket options: every connection
//! carries a deadline (armed while reading or writing, re-armed on
//! progress), and `epoll_wait` sleeps only until the nearest one. A
//! slow-loris peer therefore costs one idle entry in the connection
//! table instead of a blocked worker thread.
//!
//! Admission keeps the blocking pool's semantics: at most
//! `workers + queue_depth` connections may be open — the same bound the
//! blocking core enforced as "serving + queued" — and everything beyond
//! it is shed at accept with `503` + `Retry-After`. Graceful drain
//! closes the listener (the port refuses immediately), drops idle
//! connections, and lets in-flight requests finish writing.

use crate::conn::{Conn, Input, State};
use crate::http::{HttpError, Request};
use crate::{render_error, render_ok, route, Shared, Task};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::raw::c_int;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod sys {
    use std::os::raw::c_int;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirrors `struct epoll_event`. The kernel ABI packs it on x86_64
    /// only; other architectures (the aarch64 check build included) use
    /// natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    impl EpollEvent {
        /// Field reads as by-value copies: references into a packed
        /// struct are UB, so these are the only accessors used.
        pub fn mask(&self) -> u32 {
            self.events
        }

        pub fn user_data(&self) -> u64 {
            self.data
        }
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Thin RAII wrapper over an epoll instance.
struct Epoll {
    fd: c_int,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: c_int, events: u32) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: fd as u32 as u64,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: c_int, events: u32) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events)
    }

    /// Change interest, re-adding if the fd was deregistered.
    fn set(&self, fd: c_int, events: u32) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events)
            .or_else(|_| self.ctl(sys::EPOLL_CTL_ADD, fd, events))
    }

    fn del(&self, fd: c_int) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0)
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: c_int) -> std::io::Result<usize> {
        let rc = unsafe {
            sys::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// A worker's finished response, addressed by connection identity (the
/// id guards against the fd being recycled for a newer connection).
pub(crate) struct Completion {
    pub conn_id: u64,
    pub fd: i32,
    pub bytes: Vec<u8>,
    pub keep_alive: bool,
}

/// The reactor-mode rendezvous state living in [`Shared`]: the
/// completion queue workers fill and the socketpair they ring.
pub(crate) struct ReactorShared {
    completions: Mutex<VecDeque<Completion>>,
    wake_tx: UnixStream,
    /// Taken (once) by the reactor thread at startup.
    wake_rx: Mutex<Option<UnixStream>>,
}

impl ReactorShared {
    pub fn new() -> std::io::Result<ReactorShared> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(ReactorShared {
            completions: Mutex::new(VecDeque::new()),
            wake_tx: tx,
            wake_rx: Mutex::new(Some(rx)),
        })
    }

    /// Ring the reactor. A full pipe means a wakeup is already pending,
    /// so the error is ignorable by design.
    pub fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// Worker-side execution of one decoded request (the reactor-mode
/// counterpart of `handle_connection`'s routing block).
pub(crate) fn execute(shared: &Shared, conn_id: u64, fd: i32, request: Request) {
    let t0 = Instant::now();
    let outcome = route(shared, &request);
    msc_obs::value("serve.request_nanos", t0.elapsed().as_nanos() as u64);
    // Don't hold a drained daemon open on keep-alive.
    let keep_alive = !request.wants_close() && !shared.stop.load(Ordering::SeqCst);
    let bytes = match outcome {
        Ok(body) => {
            msc_obs::count("serve.requests", 1);
            render_ok(&body, keep_alive)
        }
        Err(err) => {
            msc_obs::count("serve.http_error", 1);
            render_error(&err, keep_alive)
        }
    };
    let reactor = shared
        .reactor
        .as_ref()
        .expect("reactor tasks only exist in reactor mode");
    reactor.completions.lock().unwrap().push_back(Completion {
        conn_id,
        fd,
        bytes,
        keep_alive,
    });
    reactor.wake();
}

/// One connection as the reactor tracks it: the socket plus its
/// I/O-free state machine.
struct Connection {
    stream: TcpStream,
    conn: Conn,
}

pub(crate) fn run(shared: Arc<Shared>, listener: TcpListener) {
    if let Err(e) = Reactor::new(&shared, listener).and_then(|mut r| r.run()) {
        // A reactor that cannot run leaves the daemon unreachable;
        // surface it loudly rather than spinning.
        eprintln!("msc-serve: reactor failed: {e}");
    }
}

struct Reactor<'a> {
    shared: &'a Shared,
    epoll: Epoll,
    /// `None` once drain has closed the port.
    listener: Option<TcpListener>,
    listener_fd: i32,
    wake_rx: UnixStream,
    wake_fd: i32,
    conns: HashMap<i32, Connection>,
    next_id: u64,
    draining: bool,
}

impl<'a> Reactor<'a> {
    fn new(shared: &'a Shared, listener: TcpListener) -> std::io::Result<Reactor<'a>> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake_rx = shared
            .reactor
            .as_ref()
            .expect("reactor mode requires ReactorShared")
            .wake_rx
            .lock()
            .unwrap()
            .take()
            .expect("reactor started twice");
        let listener_fd = listener.as_raw_fd();
        let wake_fd = wake_rx.as_raw_fd();
        epoll.add(listener_fd, sys::EPOLLIN)?;
        epoll.add(wake_fd, sys::EPOLLIN)?;
        Ok(Reactor {
            shared,
            epoll,
            listener: Some(listener),
            listener_fd,
            wake_rx,
            wake_fd,
            conns: HashMap::new(),
            next_id: 0,
            draining: false,
        })
    }

    fn run(&mut self) -> std::io::Result<()> {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                return Ok(());
            }
            let timeout = self.next_timeout_ms();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            msc_obs::count("serve.epoll_wakeups", 1);
            for ev in &events[..n] {
                let fd = ev.user_data() as i32;
                if fd == self.listener_fd {
                    self.accept_ready();
                } else if fd == self.wake_fd {
                    self.drain_wake();
                } else {
                    self.conn_event(fd, ev.mask());
                }
            }
            self.handle_completions();
            self.expire_deadlines();
        }
    }

    /// Sleep until the nearest connection deadline (`-1` = forever:
    /// shutdown and completions both arrive as wakeup bytes).
    fn next_timeout_ms(&self) -> c_int {
        let nearest = self.conns.values().filter_map(|c| c.conn.deadline).min();
        match nearest {
            None => -1,
            Some(d) => {
                let ms = d
                    .saturating_duration_since(Instant::now())
                    .as_millis()
                    .saturating_add(1); // round up so expiry checks pass
                ms.min(60_000) as c_int
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    msc_obs::count("serve.accepted", 1);
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue; // drop it
                    }
                    // Same admission bound as the blocking pool:
                    // `workers` serving + `queue_depth` waiting.
                    if self.draining || self.conns.len() >= self.shared.admit_capacity {
                        msc_obs::count("serve.shed", 1);
                        let err = HttpError::Overloaded {
                            retry_after: self.shared.opts.retry_after,
                        };
                        // Best-effort: a fresh socket's send buffer is
                        // empty, so this short write does not block.
                        let _ = (&stream).write(&render_error(&err, false));
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    if self.epoll.add(fd, sys::EPOLLIN | sys::EPOLLRDHUP).is_err() {
                        continue;
                    }
                    self.next_id += 1;
                    let conn =
                        Conn::new(self.next_id, Instant::now(), self.shared.opts.read_timeout);
                    self.conns.insert(fd, Connection { stream, conn });
                    self.shared.open_conns.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_event(&mut self, fd: i32, mask: u32) {
        let Some(c) = self.conns.get(&fd) else { return };
        let state = c.conn.state();
        if state.wants_read() {
            if mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                self.conn_readable(fd);
            }
        } else if state == State::Writing {
            if mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                self.conn_writable(fd);
            }
        } else if state == State::Executing && mask & (sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            // The peer vanished mid-execute. Deregister so the
            // level-triggered HUP stops waking us; the completion
            // write will fail and close the connection.
            let _ = self.epoll.del(fd);
        }
    }

    /// Pull whatever the socket has and advance the state machine.
    fn conn_readable(&mut self, fd: i32) {
        let limits = self.shared.opts.limits.clone();
        let read_timeout = self.shared.opts.read_timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(c) = self.conns.get_mut(&fd) else {
                return;
            };
            let (chunk, eof): (&[u8], bool) = match c.stream.read(&mut buf) {
                Ok(0) => (&[], true),
                Ok(n) => (&buf[..n], false),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(fd);
                    return;
                }
            };
            match c
                .conn
                .on_input(chunk, eof, &limits, Instant::now(), read_timeout)
            {
                Ok(Input::Pending) => {
                    if eof {
                        // Half-closed mid-head with bytes we can never
                        // complete — unreachable (the parser errors
                        // first), but never spin on a dead socket.
                        self.close_conn(fd);
                        return;
                    }
                }
                Ok(Input::Request(request)) => {
                    self.dispatch(fd, request);
                    return;
                }
                Ok(Input::Closed) => {
                    self.close_conn(fd);
                    return;
                }
                Err(err) => {
                    self.error_response(fd, &err);
                    return;
                }
            }
        }
    }

    /// Hand a decoded request to the worker pool; the socket goes
    /// quiescent until the completion comes back.
    fn dispatch(&mut self, fd: i32, request: Request) {
        let Some(c) = self.conns.get(&fd) else { return };
        let conn_id = c.conn.id;
        // Stop watching for input while executing (only HUP/ERR, which
        // epoll always reports, remain interesting).
        let _ = self.epoll.set(fd, 0);
        if self
            .shared
            .queue
            .try_push(Task::Request {
                conn_id,
                fd,
                request,
            })
            .is_err()
        {
            // Unreachable by construction — open connections are capped
            // at the queue's capacity — but shed rather than hang.
            msc_obs::count("serve.shed", 1);
            let err = HttpError::Overloaded {
                retry_after: self.shared.opts.retry_after,
            };
            self.error_response(fd, &err);
        }
    }

    /// Render an [`HttpError`] and start writing it; the connection
    /// closes once it drains.
    fn error_response(&mut self, fd: i32, err: &HttpError) {
        msc_obs::count("serve.http_error", 1);
        self.start_response(fd, render_error(err, false), false);
    }

    fn start_response(&mut self, fd: i32, bytes: Vec<u8>, keep_alive: bool) {
        let write_timeout = self.shared.opts.write_timeout;
        let Some(c) = self.conns.get_mut(&fd) else {
            return;
        };
        c.conn
            .start_response(bytes, keep_alive, Instant::now(), write_timeout);
        self.conn_writable(fd);
    }

    /// Push response bytes as the socket accepts them.
    fn conn_writable(&mut self, fd: i32) {
        let read_timeout = self.shared.opts.read_timeout;
        loop {
            let Some(c) = self.conns.get_mut(&fd) else {
                return;
            };
            if c.conn.state() != State::Writing {
                return;
            }
            let pending = c.conn.pending_write();
            if pending.is_empty() {
                // A zero-length response body cannot happen (every
                // response has a head), but don't loop on it.
                self.close_conn(fd);
                return;
            }
            match c.stream.write(pending) {
                Ok(0) => {
                    self.close_conn(fd);
                    return;
                }
                Ok(n) => {
                    if c.conn.advance_write(n, Instant::now(), read_timeout) {
                        match c.conn.state() {
                            State::KeepAlive => {
                                if self.draining && c.conn.is_idle() {
                                    self.close_conn(fd);
                                    return;
                                }
                                let _ = self.epoll.set(fd, sys::EPOLLIN | sys::EPOLLRDHUP);
                                self.poll_buffered(fd);
                            }
                            _ => self.close_conn(fd),
                        }
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let _ = self.epoll.set(fd, sys::EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(fd);
                    return;
                }
            }
        }
    }

    /// After a response flushed on a keep-alive connection: consume a
    /// pipelined request that may already be buffered.
    fn poll_buffered(&mut self, fd: i32) {
        let limits = self.shared.opts.limits.clone();
        let read_timeout = self.shared.opts.read_timeout;
        let Some(c) = self.conns.get_mut(&fd) else {
            return;
        };
        match c.conn.poll_next(&limits, Instant::now(), read_timeout) {
            Ok(Input::Pending) => {}
            Ok(Input::Request(request)) => self.dispatch(fd, request),
            Ok(Input::Closed) => self.close_conn(fd),
            Err(err) => self.error_response(fd, &err),
        }
    }

    /// Apply worker completions: attach the response and start writing.
    fn handle_completions(&mut self) {
        let reactor = self.shared.reactor.as_ref().expect("reactor mode");
        loop {
            let completion = reactor.completions.lock().unwrap().pop_front();
            let Some(done) = completion else { return };
            let stale = match self.conns.get(&done.fd) {
                Some(c) => c.conn.id != done.conn_id || c.conn.state() != State::Executing,
                None => true,
            };
            if stale {
                continue; // connection died while the worker ran
            }
            self.start_response(done.fd, done.bytes, done.keep_alive);
        }
    }

    /// Time out connections whose deadline passed: 408 while reading
    /// (slow-loris and idle keep-alive alike), drop while writing.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<(i32, State)> = self
            .conns
            .iter()
            .filter(|(_, c)| c.conn.deadline.is_some_and(|d| d <= now))
            .map(|(fd, c)| (*fd, c.conn.state()))
            .collect();
        for (fd, state) in expired {
            if state.wants_read() {
                self.error_response(fd, &HttpError::Timeout);
            } else {
                self.close_conn(fd);
            }
        }
    }

    /// Stop admitting: close the port, drop idle connections, let
    /// in-flight work finish. The main loop exits once the table
    /// empties.
    fn begin_drain(&mut self) {
        self.draining = true;
        if self.listener.take().is_some() {
            let _ = self.epoll.del(self.listener_fd);
        }
        let idle: Vec<i32> = self
            .conns
            .iter()
            .filter(|(_, c)| c.conn.is_idle())
            .map(|(fd, _)| *fd)
            .collect();
        for fd in idle {
            self.close_conn(fd);
        }
    }

    fn close_conn(&mut self, fd: i32) {
        if let Some(mut c) = self.conns.remove(&fd) {
            let _ = self.epoll.del(fd);
            c.conn.force_close();
            self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            // Dropping the stream closes the socket.
        }
    }
}
