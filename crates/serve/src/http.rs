//! A deliberately small HTTP/1.1 server-side parser with hard limits.
//!
//! The daemon only speaks enough HTTP for its five endpoints, so the
//! parser is hand-rolled rather than pulled in as a dependency — but it
//! is written defensively: every dimension of a request (request-line
//! length, header count and size, body size, read pacing) has an explicit
//! bound, and exceeding a bound is a typed [`HttpError`] that renders as
//! a 4xx response. Malformed or hostile input must never panic a worker;
//! it produces an error response and the connection is dropped.

use std::io::{BufRead, ErrorKind, Write};

/// Hard bounds on what a single request may look like.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line (method + path + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most headers accepted on one request.
    pub max_header_count: usize,
    /// Largest accepted body, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_header_count: 64,
            max_body: 1 << 20,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/compile`.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Everything that turns into a non-200 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// 400 — syntactically broken request or body.
    BadRequest(String),
    /// 404 — no such endpoint.
    NotFound,
    /// 405 — endpoint exists, method does not.
    MethodNotAllowed,
    /// 408 — the client paced bytes slower than the socket timeout.
    Timeout,
    /// 411 — a body-bearing method without `Content-Length`.
    LengthRequired,
    /// 413 — declared body larger than [`Limits::max_body`].
    PayloadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// 415 — body present but not `application/json`.
    UnsupportedMediaType,
    /// 422 — well-formed request the pipeline rejected (compile error,
    /// conversion explosion, watchdog, ...).
    Unprocessable(String),
    /// 431 — header section exceeds the configured bounds.
    HeadersTooLarge,
    /// 503 — the admission queue is full; retry after the hinted seconds.
    Overloaded {
        /// `Retry-After` hint, seconds.
        retry_after: u64,
    },
    /// 500 — a bug on our side.
    Internal(String),
}

impl HttpError {
    /// Status code and reason phrase.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::NotFound => (404, "Not Found"),
            HttpError::MethodNotAllowed => (405, "Method Not Allowed"),
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::LengthRequired => (411, "Length Required"),
            HttpError::PayloadTooLarge { .. } => (413, "Payload Too Large"),
            HttpError::UnsupportedMediaType => (415, "Unsupported Media Type"),
            HttpError::Unprocessable(_) => (422, "Unprocessable Entity"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::Overloaded { .. } => (503, "Service Unavailable"),
            HttpError::Internal(_) => (500, "Internal Server Error"),
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) | HttpError::Unprocessable(m) | HttpError::Internal(m) => {
                m.clone()
            }
            HttpError::NotFound => "no such endpoint".to_string(),
            HttpError::MethodNotAllowed => "method not allowed on this endpoint".to_string(),
            HttpError::Timeout => "client read timed out".to_string(),
            HttpError::LengthRequired => "POST requires Content-Length".to_string(),
            HttpError::PayloadTooLarge { limit } => {
                format!("body exceeds the {limit}-byte limit")
            }
            HttpError::UnsupportedMediaType => "Content-Type must be application/json".to_string(),
            HttpError::HeadersTooLarge => "header section too large".to_string(),
            HttpError::Overloaded { .. } => "request queue is full".to_string(),
        }
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        ErrorKind::UnexpectedEof => HttpError::BadRequest("truncated request".to_string()),
        _ => HttpError::BadRequest(format!("read failed: {e}")),
    }
}

/// Read one CRLF/LF-terminated line of at most `max` bytes (terminator
/// excluded). `Ok(None)` = EOF before any byte arrived.
fn read_line_limited<R: BufRead>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(io_error)?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::BadRequest("truncated request".to_string()))
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if line.len() + nl > max {
                    return Err(HttpError::HeadersTooLarge);
                }
                line.extend_from_slice(&buf[..nl]);
                r.consume(nl + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                let n = buf.len();
                if line.len() + n > max {
                    return Err(HttpError::HeadersTooLarge);
                }
                line.extend_from_slice(buf);
                r.consume(n);
            }
        }
    }
}

/// Parse one request off `reader`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive teardown).
pub fn parse_request<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let Some((mut request, length)) = parse_head(reader, limits)? else {
        return Ok(None);
    };
    if let Some(n) = length {
        let mut body = vec![0u8; n];
        reader.read_exact(&mut body).map_err(io_error)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Parse the request line + headers and validate the body framing,
/// without reading the body. Returns the request (empty body) and the
/// validated `Content-Length` (`None` = no body). Shared between the
/// blocking [`parse_request`] path and the reactor's [`PushParser`], so
/// both produce byte-identical verdicts on the same input.
fn parse_head<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
) -> Result<Option<(Request, Option<usize>)>, HttpError> {
    let line = match read_line_limited(reader, limits.max_request_line)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("request line is not UTF-8".to_string()))?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line: {line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("bad method: {method:?}")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "bad request target: {path:?}"
        )));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("bad version: {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader, limits.max_header_line)?
            .ok_or_else(|| HttpError::BadRequest("truncated headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_header_count {
            return Err(HttpError::HeadersTooLarge);
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::BadRequest("header is not UTF-8".to_string()))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!("malformed header: {line:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported".to_string(),
        ));
    }
    let body_bearing = matches!(request.method.as_str(), "POST" | "PUT" | "PATCH");
    let length = match request.header("content-length") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length: {v:?}")))?,
        ),
        None if body_bearing => return Err(HttpError::LengthRequired),
        None => None,
    };
    if let Some(n) = length {
        if n > limits.max_body {
            return Err(HttpError::PayloadTooLarge {
                limit: limits.max_body,
            });
        }
    }
    Ok(Some((request, length)))
}

/// What [`PushParser::poll`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Poll {
    /// Not enough bytes buffered yet — wait for more readiness.
    Pending,
    /// One complete request. More may still be buffered behind it
    /// (pipelining); poll again after responding.
    Ready(Request),
    /// The peer closed cleanly between requests (keep-alive teardown).
    Closed,
}

enum PushState {
    /// Accumulating request line + headers.
    Head,
    /// Head parsed and validated; waiting for `need` body bytes.
    Body { request: Request, need: usize },
}

/// Incremental request parser for the readiness-driven reactor.
///
/// Bytes arrive in whatever chunks the socket delivers ([`feed`]);
/// [`poll`] reports whether a full request has formed. Limits are
/// enforced *as bytes arrive* — an over-long line or header bomb is
/// rejected without buffering it — and once the head terminator is seen
/// the buffered head is handed to the same `parse_head` the blocking
/// path uses, so chunked and whole-buffer parsing produce identical
/// verdicts by construction (pinned by the `chunked_parsing` proptest).
///
/// [`feed`]: PushParser::feed
/// [`poll`]: PushParser::poll
pub struct PushParser {
    buf: Vec<u8>,
    /// `buf[..scanned]` has already been searched for a newline.
    scanned: usize,
    /// Start offset of the current (unterminated) head line in `buf`.
    line_start: usize,
    /// Completed head lines so far (request line + headers).
    lines: usize,
    state: PushState,
    eof: bool,
}

impl Default for PushParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PushParser {
    /// A parser with nothing buffered, expecting a request line.
    pub fn new() -> Self {
        PushParser {
            buf: Vec::new(),
            scanned: 0,
            line_start: 0,
            lines: 0,
            state: PushState::Head,
            eof: false,
        }
    }

    /// Buffer bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Record that the peer will send no more bytes (read returned 0).
    pub fn eof(&mut self) {
        self.eof = true;
    }

    /// True when in the middle of a declared body (drives the
    /// `ReadingHead` vs `ReadingBody` connection state).
    pub fn in_body(&self) -> bool {
        matches!(self.state, PushState::Body { .. })
    }

    /// Bytes buffered but not yet consumed by a completed request. A
    /// keep-alive connection with `buffered() == 0` is idle and safe to
    /// drop during drain.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Drop the first `upto` buffered bytes and reset line accounting
    /// for the next request.
    fn consume(&mut self, upto: usize) {
        self.buf.drain(..upto);
        self.scanned = 0;
        self.line_start = 0;
        self.lines = 0;
    }

    /// Try to complete one request from the buffered bytes.
    pub fn poll(&mut self, limits: &Limits) -> Result<Poll, HttpError> {
        loop {
            match &mut self.state {
                PushState::Head => {
                    // Scan newly-arrived bytes for line terminators,
                    // enforcing per-line and header-count limits exactly
                    // as `read_line_limited` does on the blocking path.
                    while let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n')
                    {
                        let nl = self.scanned + off;
                        let raw_len = nl - self.line_start;
                        let max = if self.lines == 0 {
                            limits.max_request_line
                        } else {
                            limits.max_header_line
                        };
                        if raw_len > max {
                            return Err(HttpError::HeadersTooLarge);
                        }
                        let stripped = raw_len
                            - usize::from(nl > self.line_start && self.buf[nl - 1] == b'\r');
                        if stripped == 0 {
                            // Blank line: the head is complete (or, if
                            // this is the first line, syntactically
                            // broken). Re-parse it with the shared head
                            // parser for exact error parity with the
                            // blocking path.
                            let head_end = nl + 1;
                            let mut cursor = std::io::Cursor::new(&self.buf[..head_end]);
                            let (request, length) = parse_head(&mut cursor, limits)?
                                .expect("complete head cannot read as clean EOF");
                            self.consume(head_end);
                            match length {
                                Some(need) if need > 0 => {
                                    self.state = PushState::Body { request, need };
                                    break; // fall through to Body handling
                                }
                                _ => return Ok(Poll::Ready(request)),
                            }
                        }
                        self.lines += 1;
                        if self.lines > limits.max_header_count + 1 {
                            return Err(HttpError::HeadersTooLarge);
                        }
                        self.line_start = nl + 1;
                        self.scanned = nl + 1;
                    }
                    if let PushState::Body { .. } = self.state {
                        continue;
                    }
                    // No terminator yet: bound the partial line too, so
                    // a line-bomb is rejected before it is buffered.
                    let partial = self.buf.len() - self.line_start;
                    let max = if self.lines == 0 {
                        limits.max_request_line
                    } else {
                        limits.max_header_line
                    };
                    if partial > max {
                        return Err(HttpError::HeadersTooLarge);
                    }
                    self.scanned = self.buf.len();
                    if self.eof {
                        if self.buf.is_empty() && self.lines == 0 {
                            return Ok(Poll::Closed);
                        }
                        // Mid-head EOF: run the shared parser over what
                        // we have so the error (truncated request /
                        // truncated headers) matches the blocking path.
                        let mut cursor = std::io::Cursor::new(&self.buf[..]);
                        return match parse_head(&mut cursor, limits) {
                            Err(e) => Err(e),
                            Ok(_) => Err(HttpError::BadRequest("truncated request".to_string())),
                        };
                    }
                    return Ok(Poll::Pending);
                }
                PushState::Body { request, need } => {
                    if self.buf.len() >= *need {
                        let need = *need;
                        let mut request = std::mem::take(request);
                        request.body = self.buf[..need].to_vec();
                        self.state = PushState::Head;
                        self.consume(need);
                        return Ok(Poll::Ready(request));
                    }
                    if self.eof {
                        return Err(HttpError::BadRequest("truncated request".to_string()));
                    }
                    return Ok(Poll::Pending);
                }
            }
        }
    }
}

/// Write a response. `extra` headers come after the standard ones; the
/// body is always accompanied by an exact `Content-Length`.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    keep_alive: bool,
    extra: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        parse_request(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            &Limits::default(),
        )
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /compile HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.header("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(req.body, b"{}");
        assert!(!req.wants_close());
    }

    #[test]
    fn get_without_length_is_fine() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn post_without_length_is_411() {
        assert_eq!(
            parse("POST /compile HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        );
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let raw = "POST /compile HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::PayloadTooLarge { .. })));
    }

    #[test]
    fn truncated_body_is_400() {
        let raw = "POST /compile HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}";
        assert!(matches!(parse(raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn header_bombs_are_431() {
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw), Err(HttpError::HeadersTooLarge));

        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(parse(&raw), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn socket_timeout_reads_as_408() {
        struct Stall;
        impl std::io::Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "slow"))
            }
        }
        let mut r = std::io::BufReader::new(Stall);
        assert_eq!(
            parse_request(&mut r, &Limits::default()),
            Err(HttpError::Timeout)
        );
    }

    #[test]
    fn push_parser_byte_at_a_time_matches_whole_buffer() {
        let raw = "POST /compile HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let whole = parse(raw).unwrap().unwrap();
        let mut p = PushParser::new();
        let limits = Limits::default();
        let bytes = raw.as_bytes();
        for (i, b) in bytes.iter().enumerate() {
            p.feed(std::slice::from_ref(b));
            let got = p.poll(&limits).unwrap();
            if i + 1 == bytes.len() {
                assert_eq!(got, Poll::Ready(whole.clone()));
            } else {
                assert_eq!(got, Poll::Pending, "early ready after byte {i}");
            }
        }
    }

    #[test]
    fn push_parser_handles_pipelined_requests() {
        let mut p = PushParser::new();
        let limits = Limits::default();
        p.feed(b"GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc");
        let first = match p.poll(&limits).unwrap() {
            Poll::Ready(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.path, "/healthz");
        let second = match p.poll(&limits).unwrap() {
            Poll::Ready(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(second.path, "/x");
        assert_eq!(second.body, b"abc");
        p.eof();
        assert_eq!(p.poll(&limits).unwrap(), Poll::Closed);
    }

    #[test]
    fn push_parser_eof_mid_body_is_truncated_400() {
        let mut p = PushParser::new();
        p.feed(b"POST /compile HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}");
        assert_eq!(p.poll(&Limits::default()).unwrap(), Poll::Pending);
        p.eof();
        assert!(matches!(
            p.poll(&Limits::default()),
            Err(HttpError::BadRequest(m)) if m == "truncated request"
        ));
    }

    #[test]
    fn push_parser_rejects_line_bomb_before_buffering_it() {
        let mut p = PushParser::new();
        let limits = Limits::default();
        // No newline ever arrives; the partial line alone must trip 431.
        p.feed(&vec![b'a'; limits.max_request_line + 1]);
        assert_eq!(p.poll(&limits), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn push_parser_rejects_header_bombs() {
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        let mut p = PushParser::new();
        p.feed(raw.as_bytes());
        assert_eq!(p.poll(&Limits::default()), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn push_parser_clean_close_and_truncated_head() {
        let limits = Limits::default();
        let mut p = PushParser::new();
        p.eof();
        assert_eq!(p.poll(&limits).unwrap(), Poll::Closed);

        let mut p = PushParser::new();
        p.feed(b"GET /healthz HT");
        assert_eq!(p.poll(&limits).unwrap(), Poll::Pending);
        p.eof();
        assert!(matches!(
            p.poll(&limits),
            Err(HttpError::BadRequest(m)) if m == "truncated request"
        ));

        let mut p = PushParser::new();
        p.feed(b"GET /healthz HTTP/1.1\r\nHost: x\r\n");
        p.eof();
        assert!(matches!(
            p.poll(&limits),
            Err(HttpError::BadRequest(m)) if m == "truncated headers"
        ));
    }

    #[test]
    fn response_writer_shapes_the_head() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "Service Unavailable",
            false,
            &[("Retry-After", "1".to_string())],
            "application/json",
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
