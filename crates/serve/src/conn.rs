//! Per-connection state machine for the reactor.
//!
//! Each connection is an explicit typestate-style automaton — the same
//! idiom the synchronous-program compilation literature uses for
//! reactive control loops. States name exactly what the connection is
//! waiting on, and every transition goes through `Conn::transition`,
//! which enforces the legality table ([`State::legal`]) and counts
//! `serve.conn_state.*` so the live distribution is visible on
//! `/metrics`.
//!
//! ```text
//! ReadingHead ──► ReadingBody ──► Executing ──► Writing ──► KeepAlive
//!      ▲               │              │            │            │
//!      └───────────────┴──── error ──►└── Writing ─┘            │
//!      └────────────────────────────────────────────────────────┘
//!                    (any state) ──► Closed
//! ```
//!
//! The struct is deliberately I/O-free: the reactor owns the socket and
//! the epoll registration, feeds bytes in, and takes response bytes
//! out. That keeps every transition unit-testable without a socket.

use crate::http::{HttpError, Limits, Poll, PushParser, Request};
use std::time::{Duration, Instant};

/// What a connection is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Accumulating request line + headers.
    ReadingHead,
    /// Head accepted; accumulating the declared body.
    ReadingBody,
    /// A decoded request is on the worker queue; socket is quiescent.
    Executing,
    /// Draining response bytes as the socket accepts them.
    Writing,
    /// Response flushed; waiting for the next request (or close).
    KeepAlive,
    /// Terminal. The reactor drops the socket on entry.
    Closed,
}

impl State {
    /// All states, for exhaustive table tests.
    pub const ALL: [State; 6] = [
        State::ReadingHead,
        State::ReadingBody,
        State::Executing,
        State::Writing,
        State::KeepAlive,
        State::Closed,
    ];

    /// The legality table: which transitions the automaton may take.
    /// Anything not listed here is a reactor bug, not a peer behavior.
    pub fn legal(self, to: State) -> bool {
        use State::*;
        match (self, to) {
            // Any live state may be force-closed (peer drop, timeout,
            // write failure, drain).
            (from, Closed) => from != Closed,
            (ReadingHead, ReadingBody) => true,
            // A complete request dispatches to the worker pool...
            (ReadingHead | ReadingBody, Executing) => true,
            // ...or a parse error / read timeout short-circuits straight
            // to the response (an idle keep-alive peer gets 408, exactly
            // as the blocking path's socket timeout did).
            (ReadingHead | ReadingBody | KeepAlive, Writing) => true,
            (Executing, Writing) => true,
            (Writing, KeepAlive) => true,
            (KeepAlive, ReadingHead) => true,
            _ => false,
        }
    }

    /// True for the states where the reactor polls the socket for input.
    pub fn wants_read(self) -> bool {
        matches!(
            self,
            State::ReadingHead | State::ReadingBody | State::KeepAlive
        )
    }

    /// Metrics counter bumped on entry into this state.
    pub fn counter(self) -> &'static str {
        match self {
            State::ReadingHead => "serve.conn_state.reading_head",
            State::ReadingBody => "serve.conn_state.reading_body",
            State::Executing => "serve.conn_state.executing",
            State::Writing => "serve.conn_state.writing",
            State::KeepAlive => "serve.conn_state.keep_alive",
            State::Closed => "serve.conn_state.closed",
        }
    }
}

/// What feeding bytes into a connection produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Input {
    /// Nothing actionable yet; keep waiting for readiness.
    Pending,
    /// A complete request — hand it to the worker pool. The connection
    /// is now `Executing`.
    Request(Request),
    /// The peer closed cleanly between requests.
    Closed,
}

/// One connection's protocol state, decoupled from its socket.
pub struct Conn {
    /// Monotonic id, so a stale worker completion for a recycled fd
    /// can never be written to the wrong peer.
    pub id: u64,
    state: State,
    parser: PushParser,
    /// Response bytes being drained, and how many are already written.
    out: Vec<u8>,
    written: usize,
    close_after_write: bool,
    /// When the current state times out (`None` while `Executing`:
    /// compute is bounded by the engine's own job timeout).
    pub deadline: Option<Instant>,
}

impl Conn {
    /// A freshly-accepted connection, waiting for a request head.
    pub fn new(id: u64, now: Instant, read_timeout: Duration) -> Conn {
        msc_obs::count(State::ReadingHead.counter(), 1);
        Conn {
            id,
            state: State::ReadingHead,
            parser: PushParser::new(),
            out: Vec::new(),
            written: 0,
            close_after_write: false,
            deadline: Some(now + read_timeout),
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// True when nothing is buffered and no request is in flight —
    /// safe to drop during graceful drain.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::ReadingHead | State::KeepAlive) && self.parser.buffered() == 0
    }

    fn transition(&mut self, to: State) {
        debug_assert!(
            self.state.legal(to),
            "illegal connection transition {:?} -> {:?}",
            self.state,
            to
        );
        msc_obs::count(to.counter(), 1);
        self.state = to;
    }

    /// Force the terminal state (timeout, write error, peer drop,
    /// drain). Idempotent.
    pub fn force_close(&mut self) {
        if self.state != State::Closed {
            self.transition(State::Closed);
        }
    }

    /// Feed bytes received from the socket (`eof` = read returned 0)
    /// and advance the automaton. An `Err` is a protocol violation:
    /// render it with [`Conn::start_response`] and close after writing.
    pub fn on_input(
        &mut self,
        bytes: &[u8],
        eof: bool,
        limits: &Limits,
        now: Instant,
        read_timeout: Duration,
    ) -> Result<Input, HttpError> {
        debug_assert!(matches!(
            self.state,
            State::ReadingHead | State::ReadingBody | State::KeepAlive
        ));
        if self.state == State::KeepAlive {
            if bytes.is_empty() && !eof && self.parser.buffered() == 0 {
                return Ok(Input::Pending);
            }
            self.transition(State::ReadingHead);
        }
        if !bytes.is_empty() {
            self.parser.feed(bytes);
            // Progress resets the read deadline, mirroring the blocking
            // path's per-read socket timeout.
            self.deadline = Some(now + read_timeout);
        }
        if eof {
            self.parser.eof();
        }
        match self.parser.poll(limits)? {
            Poll::Ready(request) => {
                self.transition(State::Executing);
                self.deadline = None;
                Ok(Input::Request(request))
            }
            Poll::Pending => {
                if self.parser.in_body() && self.state == State::ReadingHead {
                    self.transition(State::ReadingBody);
                }
                Ok(Input::Pending)
            }
            Poll::Closed => {
                self.transition(State::Closed);
                Ok(Input::Closed)
            }
        }
    }

    /// After a response flushed on a keep-alive connection: consume any
    /// pipelined bytes already buffered.
    pub fn poll_next(
        &mut self,
        limits: &Limits,
        now: Instant,
        read_timeout: Duration,
    ) -> Result<Input, HttpError> {
        debug_assert_eq!(self.state, State::KeepAlive);
        self.on_input(&[], false, limits, now, read_timeout)
    }

    /// Attach a fully-rendered response and enter `Writing`.
    pub fn start_response(
        &mut self,
        bytes: Vec<u8>,
        keep_alive: bool,
        now: Instant,
        write_timeout: Duration,
    ) {
        self.transition(State::Writing);
        self.out = bytes;
        self.written = 0;
        self.close_after_write = !keep_alive;
        self.deadline = Some(now + write_timeout);
    }

    /// Bytes still owed to the socket.
    pub fn pending_write(&self) -> &[u8] {
        &self.out[self.written..]
    }

    /// Record `n` bytes written. Returns `true` when the response has
    /// fully flushed — the connection is then `KeepAlive` (read
    /// deadline re-armed) or `Closed`.
    pub fn advance_write(&mut self, n: usize, now: Instant, read_timeout: Duration) -> bool {
        self.written += n;
        debug_assert!(self.written <= self.out.len());
        if self.written < self.out.len() {
            return false;
        }
        self.out = Vec::new();
        self.written = 0;
        if self.close_after_write {
            self.transition(State::Closed);
        } else {
            self.transition(State::KeepAlive);
            self.deadline = Some(now + read_timeout);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    const RT: Duration = Duration::from_secs(5);

    fn conn() -> Conn {
        Conn::new(1, Instant::now(), RT)
    }

    #[test]
    fn legality_table_is_exactly_the_documented_automaton() {
        use State::*;
        let expected = [
            (ReadingHead, ReadingBody),
            (ReadingHead, Executing),
            (ReadingHead, Writing),
            (ReadingBody, Executing),
            (ReadingBody, Writing),
            (Executing, Writing),
            (Writing, KeepAlive),
            (KeepAlive, ReadingHead),
            (KeepAlive, Writing),
        ];
        for from in State::ALL {
            for to in State::ALL {
                let legal = from.legal(to);
                let in_table = expected.contains(&(from, to)) || (to == Closed && from != Closed);
                assert_eq!(legal, in_table, "{from:?} -> {to:?}");
            }
        }
    }

    #[test]
    fn full_request_lifecycle_walks_the_states() {
        let limits = Limits::default();
        let now = Instant::now();
        let mut c = conn();
        assert_eq!(c.state(), State::ReadingHead);
        assert!(c.is_idle());

        // Head arrives in two pieces, then the body.
        let got = c
            .on_input(b"POST /run HTTP/1.1\r\nContent-", false, &limits, now, RT)
            .unwrap();
        assert_eq!(got, Input::Pending);
        assert_eq!(c.state(), State::ReadingHead);
        assert!(!c.is_idle());

        let got = c
            .on_input(b"Length: 4\r\n\r\nab", false, &limits, now, RT)
            .unwrap();
        assert_eq!(got, Input::Pending);
        assert_eq!(c.state(), State::ReadingBody);

        let got = c.on_input(b"cd", false, &limits, now, RT).unwrap();
        let req = match got {
            Input::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(req.body, b"abcd");
        assert_eq!(c.state(), State::Executing);
        assert_eq!(c.deadline, None);

        // Worker completes; response drains in two writes.
        c.start_response(b"HTTP/1.1 200 OK\r\n\r\n".to_vec(), true, now, RT);
        assert_eq!(c.state(), State::Writing);
        assert!(!c.advance_write(5, now, RT));
        let rest = c.pending_write().len();
        assert!(c.advance_write(rest, now, RT));
        assert_eq!(c.state(), State::KeepAlive);
        assert!(c.is_idle());

        // Nothing pipelined: polling parks it back in ReadingHead only
        // when input arrives.
        assert_eq!(c.poll_next(&limits, now, RT).unwrap(), Input::Pending);
        assert_eq!(c.state(), State::KeepAlive);

        // Peer hangs up cleanly.
        let got = c.on_input(&[], true, &limits, now, RT).unwrap();
        assert_eq!(got, Input::Closed);
        assert_eq!(c.state(), State::Closed);
    }

    #[test]
    fn parse_error_goes_to_writing_then_closed() {
        let limits = Limits::default();
        let now = Instant::now();
        let mut c = conn();
        let err = c
            .on_input(b"GARBAGE\r\n\r\n", false, &limits, now, RT)
            .unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)));
        c.start_response(b"HTTP/1.1 400 Bad Request\r\n\r\n".to_vec(), false, now, RT);
        assert_eq!(c.state(), State::Writing);
        assert!(c.advance_write(28, now, RT));
        assert_eq!(c.state(), State::Closed);
    }

    #[test]
    fn pipelined_request_is_picked_up_after_the_response() {
        let limits = Limits::default();
        let now = Instant::now();
        let mut c = conn();
        let got = c
            .on_input(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n",
                false,
                &limits,
                now,
                RT,
            )
            .unwrap();
        assert!(matches!(got, Input::Request(r) if r.path == "/healthz"));
        c.start_response(b"x".to_vec(), true, now, RT);
        assert!(c.advance_write(1, now, RT));
        let got = c.poll_next(&limits, now, RT).unwrap();
        assert!(matches!(got, Input::Request(r) if r.path == "/metrics"));
        assert_eq!(c.state(), State::Executing);
    }

    #[test]
    fn force_close_is_legal_from_everywhere_and_idempotent() {
        let mut c = conn();
        c.force_close();
        assert_eq!(c.state(), State::Closed);
        c.force_close();
        assert_eq!(c.state(), State::Closed);
    }

    #[test]
    fn progress_resets_the_read_deadline() {
        let limits = Limits::default();
        let mut c = conn();
        let t0 = c.deadline.unwrap();
        let later = Instant::now() + Duration::from_secs(60);
        c.on_input(b"GET", false, &limits, later, RT).unwrap();
        assert!(c.deadline.unwrap() > t0);
    }
}
