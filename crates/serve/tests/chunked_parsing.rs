//! Chunked parsing ≡ whole-buffer parsing.
//!
//! The reactor feeds the HTTP parser whatever byte chunks readiness
//! delivers, so the incremental [`PushParser`] must reach exactly the
//! same verdicts as the blocking whole-buffer path — same requests, in
//! order, and the same typed error (or clean close) at the end — for
//! *any* byte stream and *any* chunking of it. This property is what
//! lets the robustness suite's expectations (408/400/411/413/431/...)
//! carry over to the reactor unchanged.

use msc_serve::http::{parse_request, HttpError, Limits, Poll, PushParser, Request};
use proptest::prelude::*;
use std::io::Cursor;

/// How a parsing session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Terminal {
    CleanClose,
    Error(HttpError),
}

/// The blocking server's view: parse requests off one buffer until the
/// peer would be disconnected (clean EOF or protocol error).
fn whole_buffer(stream: &[u8], limits: &Limits) -> (Vec<Request>, Terminal) {
    let mut cursor = Cursor::new(stream.to_vec());
    let mut requests = Vec::new();
    loop {
        match parse_request(&mut cursor, limits) {
            Ok(None) => return (requests, Terminal::CleanClose),
            Ok(Some(r)) => requests.push(r),
            Err(e) => return (requests, Terminal::Error(e)),
        }
    }
}

/// The reactor's view: the same bytes, pushed in arbitrary chunks.
fn chunked(stream: &[u8], sizes: &[usize], limits: &Limits) -> (Vec<Request>, Terminal) {
    let mut parser = PushParser::new();
    let mut requests = Vec::new();
    let mut offset = 0;
    let mut turn = 0;
    while offset < stream.len() {
        let size = sizes.get(turn % sizes.len()).copied().unwrap_or(1).max(1);
        turn += 1;
        let end = (offset + size).min(stream.len());
        parser.feed(&stream[offset..end]);
        offset = end;
        loop {
            match parser.poll(limits) {
                Ok(Poll::Ready(r)) => requests.push(r),
                Ok(Poll::Pending) => break,
                Ok(Poll::Closed) => return (requests, Terminal::CleanClose),
                Err(e) => return (requests, Terminal::Error(e)),
            }
        }
    }
    parser.eof();
    loop {
        match parser.poll(limits) {
            Ok(Poll::Ready(r)) => requests.push(r),
            Ok(Poll::Pending) => unreachable!("parser pending after EOF"),
            Ok(Poll::Closed) => return (requests, Terminal::CleanClose),
            Err(e) => return (requests, Terminal::Error(e)),
        }
    }
}

/// One segment of a connection's byte stream: valid requests of every
/// shape the API serves, plus the malformed inputs the robustness suite
/// cares about.
fn arb_segment() -> BoxedStrategy<Vec<u8>> {
    let valid_get = (0u8..4).prop_map(|i| {
        let path = ["/healthz", "/metrics", "/x", "/"][i as usize];
        let close = if i % 2 == 0 {
            "Connection: close\r\n"
        } else {
            ""
        };
        format!("GET {path} HTTP/1.1\r\n{close}\r\n").into_bytes()
    });
    let valid_post = prop::collection::vec(0u8..=255, 0..24).prop_map(|body| {
        let mut out = format!(
            "POST /compile HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        out.extend_from_slice(&body);
        out
    });
    let malformed = prop_oneof![
        Just(b"GARBAGE\r\n\r\n".to_vec()),
        Just(b"GET\r\n\r\n".to_vec()),
        Just(b"get /x HTTP/1.1\r\n\r\n".to_vec()),
        Just(b"GET x HTTP/1.1\r\n\r\n".to_vec()),
        Just(b"GET /x SPDY/3\r\n\r\n".to_vec()),
        Just(b"POST /compile HTTP/1.1\r\n\r\n".to_vec()),
        Just(b"POST /c HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec()),
        Just(b"POST /c HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec()),
        Just(b"POST /c HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec()),
        Just(b"GET /x HTTP/1.1\r\nNo-Colon-Header\r\n\r\n".to_vec()),
        Just(b"\xff\xfe\xfd\r\n\r\n".to_vec()),
        Just(b"\r\n\r\n".to_vec()),
        // Truncations: cut off mid-head and mid-body.
        Just(b"GET /x HTT".to_vec()),
        Just(b"GET /x HTTP/1.1\r\nHost: a\r\n".to_vec()),
        Just(b"POST /c HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"so".to_vec()),
        // Bombs: long line and many headers.
        Just({
            let mut v = b"GET /".to_vec();
            v.extend(std::iter::repeat_n(b'a', 9_000));
            v.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            v
        }),
        Just({
            let mut v = b"GET /x HTTP/1.1\r\n".to_vec();
            for i in 0..70 {
                v.extend_from_slice(format!("X-P{i}: x\r\n").as_bytes());
            }
            v.extend_from_slice(b"\r\n");
            v
        }),
    ];
    // Raw byte soup from an HTTP-flavored alphabet, so some of it forms
    // line structure and some of it is binary garbage.
    let soup = prop::collection::vec(0u8..16, 1..40).prop_map(|xs| {
        xs.into_iter()
            .map(|x| b"GET /PO\r\n :1.\x00\xffab"[x as usize])
            .collect::<Vec<u8>>()
    });
    prop_oneof![valid_get, valid_post, malformed, soup].boxed()
}

proptest! {
    /// Any stream, any chunking: the push parser and the blocking
    /// parser agree on every request and on how the session ends.
    #[test]
    fn chunked_parsing_matches_whole_buffer(
        segments in prop::collection::vec(arb_segment(), 1..4),
        sizes in prop::collection::vec(1usize..17, 1..8),
    ) {
        let stream: Vec<u8> = segments.concat();
        let limits = Limits::default();
        let expected = whole_buffer(&stream, &limits);
        let got = chunked(&stream, &sizes, &limits);
        prop_assert_eq!(expected, got);
    }

    /// Degenerate chunking — one byte per readiness event — is the
    /// worst case for incremental state handling; pin it explicitly.
    #[test]
    fn byte_at_a_time_matches_whole_buffer(
        segments in prop::collection::vec(arb_segment(), 1..3),
    ) {
        let stream: Vec<u8> = segments.concat();
        let limits = Limits::default();
        let expected = whole_buffer(&stream, &limits);
        let got = chunked(&stream, &[1], &limits);
        prop_assert_eq!(expected, got);
    }
}
