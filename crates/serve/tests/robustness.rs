//! Hostile-input pinning for the daemon: malformed request lines,
//! oversized bodies, truncated and slow-loris reads, wrong content
//! types. Every case must come back as a clean 4xx/408/503 — never a
//! panic, never a leaked worker — and the daemon must keep serving
//! afterwards.
//!
//! Each test starts its own daemon on an ephemeral port; the process-
//! global obs install lock serializes them, so they never share state.

use msc_serve::client::Client;
use msc_serve::{ServeOptions, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const PROG: &str = "main() { poly int x; x = pe_id() * 2 + 1; return(x); }";

fn start(configure: impl FnOnce(&mut ServeOptions)) -> ServerHandle {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_millis(400),
        ..ServeOptions::default()
    };
    configure(&mut opts);
    Server::start(opts).expect("bind ephemeral port")
}

/// Write raw bytes, half-close, read whatever comes back.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(bytes).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn assert_alive(addr: &str) {
    let mut c = Client::connect(addr).unwrap();
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200, "daemon must survive: {}", health.body);
}

#[test]
fn malformed_request_lines_are_400_and_daemon_survives() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    for raw in [
        &b"GARBAGE\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"GET /healthz HTTP/1.1 junk\r\n\r\n",
        b"get /healthz HTTP/1.1\r\n\r\n",
        b"GET healthz HTTP/1.1\r\n\r\n",
        b"\xff\xfe\xfd\r\n\r\n",
        b"POST /compile HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
        b"POST /compile HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    ] {
        let resp = raw_exchange(&addr, raw);
        assert!(
            resp.starts_with("HTTP/1.1 400 "),
            "input {raw:?} got: {resp}"
        );
        assert_alive(&addr);
    }
    handle.shutdown();
}

#[test]
fn unknown_paths_and_methods_are_404_405() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.get("/nope").unwrap().status, 404);
    // Same keep-alive connection keeps working after a routing error.
    assert_eq!(c.request("DELETE", "/healthz", None).unwrap().status, 405);
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn oversized_declared_body_is_413() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let resp = raw_exchange(
        &addr,
        b"POST /compile HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn truncated_body_is_400() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let resp = raw_exchange(
        &addr,
        b"POST /compile HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 50\r\n\r\n{\"so",
    );
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn post_without_length_is_411_and_wrong_content_type_is_415() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let resp = raw_exchange(&addr, b"POST /compile HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 411 "), "{resp}");

    let resp = raw_exchange(
        &addr,
        b"POST /compile HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi",
    );
    assert!(resp.starts_with("HTTP/1.1 415 "), "{resp}");
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn header_bomb_is_431() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..200 {
        raw.push_str(&format!("X-Pad-{i}: filler\r\n"));
    }
    raw.push_str("\r\n");
    let resp = raw_exchange(&addr, raw.as_bytes());
    assert!(resp.starts_with("HTTP/1.1 431 "), "{resp}");
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn slow_loris_is_408_and_frees_the_worker() {
    let handle = start(|o| {
        o.workers = 1;
        o.read_timeout = Duration::from_millis(200);
    });
    let addr = handle.local_addr().to_string();
    // Trickle half a request line, then stall past the read timeout.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"POST /comp").unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 408 "), "{out}");
    // The single worker must be free again for real traffic.
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let handle = start(|o| {
        o.workers = 1;
        o.queue_depth = 1;
        o.read_timeout = Duration::from_millis(800);
    });
    let addr = handle.local_addr().to_string();
    // c1 occupies the only worker (idle, no bytes sent yet); c2 fills
    // the queue; c3 must be shed by the acceptor.
    let c1 = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let _c2 = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let mut c3 = TcpStream::connect(&addr).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = c3.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 503 "), "{out}");
    assert!(out.contains("Retry-After: 1\r\n"), "{out}");

    // The occupied worker still serves its connection normally.
    let mut c1w = c1;
    c1w.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c1w.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    let _ = c1w.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 200 "), "{out}");

    let shed = handle.registry().snapshot().counter("serve.shed");
    assert!(shed >= 1, "shed counter must record the 503, got {shed}");
    handle.shutdown();
}

#[test]
fn compile_and_run_roundtrip_with_metrics() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let body = msc_obs::json::Json::obj(vec![
        ("source", msc_obs::json::Json::from(PROG)),
        ("pes", msc_obs::json::Json::from(4u64)),
    ]);
    let resp = c.post_json("/run", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = resp.json().unwrap();
    let results: Vec<i64> = v
        .get("results")
        .and_then(|r| r.as_arr())
        .unwrap()
        .iter()
        .map(|x| x.as_i64().unwrap())
        .collect();
    assert_eq!(results, vec![1, 3, 5, 7]);

    // A second identical compile is a cache hit, visible in /metrics.
    let resp = c.post_json("/compile", &body).unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json().unwrap();
    assert!(
        matches!(
            v.get("provenance").and_then(|p| p.as_str()),
            Some("memory") | Some("coalesced")
        ),
        "{}",
        resp.body
    );
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let counters = metrics.get("counters").unwrap();
    assert_eq!(
        counters.get("cache.miss").and_then(|x| x.as_u64()),
        Some(1),
        "{}",
        metrics.render()
    );
    assert!(
        counters
            .get("serve.requests")
            .and_then(|x| x.as_u64())
            .unwrap()
            >= 2,
        "{}",
        metrics.render()
    );
    handle.shutdown();
}

#[test]
fn match_hostile_inputs_are_clean_4xx_and_daemon_survives() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let json = |s: &str| msc_obs::json::parse(s).unwrap();

    // Oversized pattern: 413, not a panic.
    let long = "a".repeat(msc_serve::api::MAX_PATTERN_BYTES + 1);
    let resp = c
        .post_json(
            "/match",
            &json(&format!(r#"{{"pattern":"{long}","shards":["x"]}}"#)),
        )
        .unwrap();
    assert_eq!(resp.status, 413, "{}", resp.body);

    // Oversized shard count: 413.
    let many = vec!["\"x\""; msc_serve::api::MAX_SHARDS + 1].join(",");
    let resp = c
        .post_json(
            "/match",
            &json(&format!(r#"{{"pattern":"a","shards":[{many}]}}"#)),
        )
        .unwrap();
    assert_eq!(resp.status, 413, "{}", resp.body);

    // Malformed pattern: 422 with the parse error, not a panic.
    let resp = c
        .post_json("/match", &json(r#"{"pattern":"a(","shards":["x"]}"#))
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);

    // Pathological-but-parseable pattern that blows the meta-state cap:
    // 422, not a hang or a panic.
    let bomb = format!(".*a{}", ".".repeat(16));
    let resp = c
        .post_json(
            "/match",
            &json(&format!(r#"{{"pattern":"{bomb}","shards":["x"]}}"#)),
        )
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);

    // Bad shapes: 400.
    for raw in [
        r#"{"shards":["x"]}"#,
        r#"{"pattern":"a","shards":[1]}"#,
        r#"{"pattern":"a"}"#,
    ] {
        let resp = c.post_json("/match", &json(raw)).unwrap();
        assert_eq!(resp.status, 400, "shape {raw}: {}", resp.body);
    }

    // GET on /match is a 405, and the daemon still works end to end.
    assert_eq!(c.get("/match").unwrap().status, 405);
    let resp = c
        .post_json(
            "/match",
            &json(r#"{"pattern":"ab","shards":["xa","by"],"threads":8}"#),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = resp.json().unwrap();
    assert_eq!(v.get("total_matches").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(
        handle.regex().compiled(),
        1,
        "only the good pattern compiled"
    );
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let counters = metrics.get("counters").unwrap();
    assert_eq!(
        counters.get("regex.requests").and_then(|x| x.as_u64()),
        Some(1),
        "{}",
        metrics.render()
    );
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn blocking_fallback_core_serves_sheds_and_drains() {
    // Pin the portability fallback explicitly: everything above runs
    // against the default core (the epoll reactor on Linux); this test
    // forces the blocking thread-per-connection pool and re-checks the
    // load-bearing behaviors — routing, keep-alive, parse errors,
    // queue-full shedding.
    let handle = start(|o| {
        o.force_blocking = true;
        o.workers = 1;
        o.queue_depth = 1;
        o.read_timeout = Duration::from_millis(800);
    });
    let addr = handle.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    let body = msc_obs::json::Json::obj(vec![
        ("source", msc_obs::json::Json::from(PROG)),
        ("pes", msc_obs::json::Json::from(4u64)),
    ]);
    let resp = c.post_json("/run", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    // Keep-alive on the same connection still works.
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    drop(c);

    let resp = raw_exchange(&addr, b"GARBAGE\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // workers=1 + queue_depth=1: a third concurrent connection is shed.
    let c1 = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let _c2 = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let mut c3 = TcpStream::connect(&addr).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = c3.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 503 "), "{out}");
    drop(c1);

    handle.shutdown();
}

#[test]
fn artifact_endpoint_serves_verified_artifacts_and_rejects_bad_keys() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let body = msc_obs::json::Json::obj(vec![("source", msc_obs::json::Json::from(PROG))]);
    let resp = c.post_json("/compile", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let key_hex = resp
        .json()
        .unwrap()
        .get("key")
        .and_then(|k| k.as_str().map(str::to_string))
        .expect("compile response must carry the cache key");
    let compiled_before = handle.engine().jobs_compiled();

    // Hit: the envelope must verify against the requested key, and the
    // payload must be the disk interchange format.
    let resp = c.get(&format!("/artifact/{key_hex}")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let key = msc_engine::CacheKey::from_hex(&key_hex).unwrap();
    let artifact = msc_cache::wire::open(key, &resp.body)
        .expect("artifact envelope must verify against the requested key");
    assert!(artifact.starts_with("mscache v1\n"), "{artifact}");

    // Valid-shaped but absent key: a clean 404, and crucially the donor
    // must NOT compile on a fleet fetch.
    let absent = "0".repeat(32);
    assert_eq!(c.get(&format!("/artifact/{absent}")).unwrap().status, 404);
    assert_eq!(
        handle.engine().jobs_compiled(),
        compiled_before,
        "an artifact fetch must never trigger a compile"
    );

    // Malformed keys: 400, not 404 — the request itself is wrong.
    for bad in ["xyz", "ABCDEF", &"0".repeat(31), &"0".repeat(33)] {
        let resp = c.get(&format!("/artifact/{bad}")).unwrap();
        assert_eq!(resp.status, 400, "key {bad:?}: {}", resp.body);
    }

    // Wrong method on a known GET path: 405.
    let resp = c.post_json(&format!("/artifact/{key_hex}"), &body).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);

    let counters = c.get("/metrics").unwrap().json().unwrap();
    let counters = counters.get("counters").unwrap().clone();
    assert_eq!(
        counters.get("serve.artifact_hit").and_then(|x| x.as_u64()),
        Some(1)
    );
    assert_eq!(
        counters.get("serve.artifact_miss").and_then(|x| x.as_u64()),
        Some(1)
    );
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn healthz_reports_cache_tiers_and_peer_breaker_status() {
    let handle = start(|o| {
        o.peers = vec!["127.0.0.1:1".to_string()];
    });
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let v = health.json().unwrap();
    let tiers = v.get("cache").and_then(|t| t.as_arr()).unwrap();
    let tier_name =
        |t: &msc_obs::json::Json| t.get("tier").and_then(|n| n.as_str().map(str::to_string));
    assert!(
        tiers.iter().any(|t| tier_name(t) == Some("memory".into())),
        "{}",
        health.body
    );
    let peers_tier = tiers
        .iter()
        .find(|t| tier_name(t) == Some("peers".into()))
        .expect("peers tier must be reported");
    let peers = peers_tier.get("peers").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(peers.len(), 1);
    assert_eq!(
        peers[0].get("addr").and_then(|a| a.as_str()),
        Some("127.0.0.1:1")
    );
    assert_eq!(
        peers[0].get("breaker").and_then(|b| b.as_str()),
        Some("closed"),
        "untouched breaker starts closed: {}",
        health.body
    );

    // The same state shows as flat gauges on /metrics.
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let gauges = metrics.get("gauges").unwrap();
    assert_eq!(gauges.get("cache.peers").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(
        gauges
            .get("cache.peer_breaker_closed")
            .and_then(|x| x.as_u64()),
        Some(1)
    );
    handle.shutdown();
}

#[test]
fn dead_peers_degrade_to_a_bounded_fresh_compile() {
    let handle = start(|o| {
        o.peers = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        o.peer = msc_engine::PeerConfig {
            connect_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(100),
            retries: 1,
            backoff: Duration::from_millis(5),
            total_deadline: Duration::from_millis(500),
            ..msc_engine::PeerConfig::default()
        };
    });
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let body = msc_obs::json::Json::obj(vec![("source", msc_obs::json::Json::from(PROG))]);
    let t0 = std::time::Instant::now();
    let resp = c.post_json("/compile", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.json()
            .unwrap()
            .get("provenance")
            .and_then(|p| p.as_str()),
        Some("fresh"),
        "{}",
        resp.body
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "dead fleet must cost at most the peer deadline, took {:?}",
        t0.elapsed()
    );
    assert_alive(&addr);
    handle.shutdown();
}

#[test]
fn corrupt_peer_fails_verification_and_falls_back_to_compile() {
    // A rogue sibling that answers every artifact fetch with plausible
    // HTTP but garbage JSON: verification must reject it and the node
    // must compile locally.
    let rogue = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let rogue_addr = rogue.local_addr().unwrap().to_string();
    let rogue_thread = std::thread::spawn(move || {
        for stream in rogue.incoming().take(4) {
            let Ok(mut s) = stream else { break };
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let body = b"{\"not\":\"an envelope\"}";
            let _ = s.write_all(
                format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            let _ = s.write_all(body);
        }
    });

    let handle = start(|o| {
        o.peers = vec![rogue_addr];
        o.peer = msc_engine::PeerConfig {
            connect_timeout: Duration::from_millis(300),
            read_timeout: Duration::from_millis(500),
            retries: 0,
            total_deadline: Duration::from_millis(1500),
            ..msc_engine::PeerConfig::default()
        };
    });
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let body = msc_obs::json::Json::obj(vec![("source", msc_obs::json::Json::from(PROG))]);
    let resp = c.post_json("/compile", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.json()
            .unwrap()
            .get("provenance")
            .and_then(|p| p.as_str()),
        Some("fresh"),
        "{}",
        resp.body
    );
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let counters = metrics.get("counters").unwrap();
    assert!(
        counters
            .get("cache.peer_verify_fail")
            .and_then(|x| x.as_u64())
            .unwrap_or(0)
            >= 1,
        "verification failure must be counted: {}",
        metrics.render()
    );
    handle.shutdown();
    drop(rogue_thread);
}

#[test]
fn metrics_exposes_conn_state_counters_and_open_connection_gauge() {
    let handle = start(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    let metrics = c.get("/metrics").unwrap().json().unwrap();

    let gauges = metrics.get("gauges").expect("metrics must carry gauges");
    let open = gauges
        .get("serve.open_connections")
        .and_then(|x| x.as_u64())
        .expect("open-connection gauge present");
    assert!(open >= 1, "this very connection is open, got {open}");

    // On the reactor core, connection state transitions are counted.
    if msc_serve::reactor_available() {
        let counters = metrics.get("counters").unwrap();
        for name in [
            "serve.conn_state.reading_head",
            "serve.conn_state.executing",
            "serve.conn_state.writing",
            "serve.epoll_wakeups",
        ] {
            assert!(
                counters.get(name).and_then(|x| x.as_u64()).unwrap_or(0) >= 1,
                "{name} missing from {}",
                metrics.render()
            );
        }
    }
    handle.shutdown();
}
