//! AST → MIMD state graph lowering.
//!
//! Implements the front half of the paper's prototype (§4.2):
//!
//! 1. a control-flow graph "constructed in a 'normalized' form that
//!    ensures, for example, that loops are all of the type that execute
//!    the body one or more times" — `while`/`for` are desugared to
//!    `if (c) do … while (c)`;
//! 2. function call handling by **inline expansion** (§2.2), including
//!    recursion: when a call to `g` is encountered while `g` is already
//!    being expanded, the call links back to the existing copy's entry and
//!    "`return` statements … are translated into multiway branches" over
//!    the statically-known set of return sites. A per-PE return-site stack
//!    (`PushRet`/`PopRet` + `Terminator::Multi`) selects the site at run
//!    time while keeping the control-flow graph call-free;
//! 3. `wait` becomes a barrier-entry state (§2.6), `spawn`/`halt` become
//!    `Terminator::Spawn` / `Terminator::Halt` (§3.2.5);
//! 4. the graph is straightened and empty nodes removed (§2.1).
//!
//! Divergences from C, documented: `&&`/`||` do not short-circuit (both
//! sides evaluate, then bitwise combine of normalized booleans — on a SIMD
//! machine both sides execute under masks anyway), and compound assignment
//! to a parallel subscript is rejected.
//!
//! Activation records: the paper's inline expansion gives each *call site*
//! one set of slots, not each activation, and leaves the data side of
//! recursion open. This lowering completes it with a caller-save
//! convention — a recursive link saves the re-entered copies' slots on the
//! per-PE operand stack and restores them at the return continuation — so
//! multi-call recursion (`fib(n-1) + fib(n-2)`) computes correctly.

use crate::ast::*;
use crate::token::Pos;
use msc_ir::util::FxHashMap;
use msc_ir::{Addr, BinOp, MimdGraph, MimdState, Op, Space, StateId, Terminator, UnOp};
use std::fmt;

/// Maximum nesting depth of inline expansion (defense against pathological
/// call chains; genuine recursion does not grow this).
const MAX_INLINE_DEPTH: usize = 64;

/// A compile-time error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Description.
    pub msg: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LowerError {}

/// Where a variable ended up.
#[derive(Debug, Clone, PartialEq)]
pub struct VarRecord {
    /// Enclosing function, or `"<global>"`.
    pub func: String,
    /// Source name.
    pub name: String,
    /// Allocated address.
    pub addr: Addr,
    /// Value type.
    pub ty: Type,
    /// Storage class.
    pub storage: Storage,
}

/// Memory layout of a compiled program.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Words of per-PE `poly` memory used.
    pub poly_words: u32,
    /// Words of replicated `mono` memory used.
    pub mono_words: u32,
    /// Every variable with its allocation (inspection/testing aid).
    pub vars: Vec<VarRecord>,
    /// Where `main`'s return value is stored (poly), if `main` returns one.
    pub main_ret: Option<Addr>,
}

impl Layout {
    /// Find a variable record by source name (innermost `main`/global
    /// declarations win by first-declared order).
    pub fn var(&self, name: &str) -> Option<&VarRecord> {
        self.vars.iter().find(|v| v.name == name)
    }
}

/// A compiled MIMDC program: the normalized MIMD state graph plus layout.
#[derive(Debug, Clone)]
pub struct Program {
    /// The MIMD control-flow graph (§2.1), normalized.
    pub graph: MimdGraph,
    /// Memory layout.
    pub layout: Layout,
}

#[derive(Debug, Clone)]
struct VarInfo {
    addr: Addr,
    ty: Type,
    storage: Storage,
}

struct LoopCtx {
    cont: StateId,
    brk: StateId,
}

/// One inline-expansion copy of a function, per §2.2.
struct ActiveCopy {
    func: String,
    entry: StateId,
    ret_slot: Option<Addr>,
    ret_ty: Type,
    /// Return-site continuations discovered so far; index = the site id a
    /// caller pushes with `PushRet`.
    ret_targets: Vec<StateId>,
    /// Blocks ending in `return`, patched to `Multi(ret_targets)` (or a
    /// plain `Jump` when only one site exists) once the copy is complete.
    ret_blocks: Vec<StateId>,
    /// The process ends at `return` (main, or a spawned process body).
    halt_on_return: bool,
    /// Whether the copy needs the return-site stack (recursive function).
    recursive: bool,
    /// Parameter slot addresses, in declaration order.
    params: Vec<Addr>,
    /// Every poly slot belonging to this copy (params + pre-allocated
    /// locals). Recursive re-entry clobbers these, so the caller saves
    /// them on the per-PE operand stack around the link and restores them
    /// at the return site (the activation-record side of §2.2, which the
    /// paper leaves open — documented in DESIGN.md).
    slots: Vec<Addr>,
    /// Pre-allocated local slots not yet bound to a declaration (recursive
    /// copies only); `declare` consumes them in source order.
    prealloc: Vec<Addr>,
    /// Next unconsumed index into `prealloc`.
    prealloc_next: usize,
}

struct Lowerer<'a> {
    ast: &'a Ast,
    graph: MimdGraph,
    layout: Layout,
    scopes: Vec<FxHashMap<String, VarInfo>>,
    loops: Vec<LoopCtx>,
    active: Vec<ActiveCopy>,
    /// Reusable spawn-entry copies per function name.
    spawn_entries: FxHashMap<String, (StateId, Vec<Addr>)>,
    /// Functions that can reach themselves through the AST call graph.
    recursive_funcs: FxHashMap<String, bool>,
    cur: StateId,
    cur_ops: Vec<Op>,
    sealed: bool,
}

/// Lower a parsed AST to a [`Program`].
pub fn lower(ast: &Ast) -> Result<Program, LowerError> {
    let main = ast.func("main").ok_or(LowerError {
        msg: "program has no `main` function".into(),
        pos: Pos { line: 1, col: 1 },
    })?;

    let mut lw = Lowerer {
        ast,
        graph: MimdGraph::new(),
        layout: Layout::default(),
        scopes: vec![FxHashMap::default()],
        loops: Vec::new(),
        active: Vec::new(),
        spawn_entries: FxHashMap::default(),
        recursive_funcs: compute_recursive(ast),
        cur: StateId(0),
        cur_ops: Vec::new(),
        sealed: true,
    };

    // Prologue block: global initializers, then main's body inline.
    let entry = lw.new_block();
    lw.graph.start = entry;
    lw.start_block(entry);
    for g in &ast.globals {
        lw.declare(g, "<global>")?;
    }

    // main is the outermost copy; its returns halt the process.
    let ret_slot = (main.ret != Type::Void).then(|| lw.alloc(Space::Poly));
    lw.layout.main_ret = ret_slot;
    if let Some(a) = ret_slot {
        lw.layout.vars.push(VarRecord {
            func: "main".into(),
            name: "<return>".into(),
            addr: a,
            ty: main.ret,
            storage: Storage::Poly,
        });
    }
    lw.active.push(ActiveCopy {
        func: "main".into(),
        entry,
        ret_slot,
        ret_ty: main.ret,
        ret_targets: vec![],
        ret_blocks: vec![],
        halt_on_return: true,
        recursive: false,
        params: vec![],
        slots: vec![],
        prealloc: vec![],
        prealloc_next: 0,
    });
    lw.scopes.push(FxHashMap::default());
    if !main.params.is_empty() {
        return Err(LowerError {
            msg: "`main` takes no parameters".into(),
            pos: main.pos,
        });
    }
    if *lw.recursive_funcs.get("main").unwrap_or(&false) {
        return Err(LowerError {
            msg: "recursive `main` is not supported".into(),
            pos: main.pos,
        });
    }
    for s in &main.body {
        lw.stmt(s)?;
    }
    if !lw.sealed {
        lw.seal(Terminator::Halt);
    }
    lw.scopes.pop();
    lw.active.pop();

    let mut graph = lw.graph;
    graph.compact();
    graph.normalize();
    graph.validate().map_err(|e| LowerError {
        msg: format!("internal: lowered graph invalid: {e}"),
        pos: Pos { line: 0, col: 0 },
    })?;
    Ok(Program {
        graph,
        layout: lw.layout,
    })
}

/// Which functions can reach themselves through the call graph (direct or
/// mutual recursion). `spawn` edges do not count: a spawned process is a
/// new process, not a pending return.
fn compute_recursive(ast: &Ast) -> FxHashMap<String, bool> {
    fn calls_in_stmt(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::Decl(d) => {
                if let Some(e) = &d.init {
                    calls_in_expr(e, out);
                }
            }
            Stmt::Decls(ds) => {
                for d in ds {
                    if let Some(e) = &d.init {
                        calls_in_expr(e, out);
                    }
                }
            }
            Stmt::Expr(e) => calls_in_expr(e, out),
            Stmt::If { cond, then, els } => {
                calls_in_expr(cond, out);
                calls_in_stmt(then, out);
                if let Some(e) = els {
                    calls_in_stmt(e, out);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                calls_in_expr(cond, out);
                calls_in_stmt(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    calls_in_stmt(i, out);
                }
                if let Some(c) = cond {
                    calls_in_expr(c, out);
                }
                if let Some(s) = step {
                    calls_in_expr(s, out);
                }
                calls_in_stmt(body, out);
            }
            Stmt::Block(v) => v.iter().for_each(|s| calls_in_stmt(s, out)),
            Stmt::Return(Some(e), _) => calls_in_expr(e, out),
            Stmt::Spawn { args, .. } => args.iter().for_each(|e| calls_in_expr(e, out)),
            _ => {}
        }
    }
    fn calls_in_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Assign { value, target, .. } => {
                calls_in_expr(value, out);
                if let LValue::ParSub { index, .. } = target {
                    calls_in_expr(index, out);
                }
            }
            Expr::Bin { l, r, .. } => {
                calls_in_expr(l, out);
                calls_in_expr(r, out);
            }
            Expr::Un { e, .. } => calls_in_expr(e, out),
            Expr::Call { name, args, .. } => {
                out.push(name.clone());
                args.iter().for_each(|a| calls_in_expr(a, out));
            }
            Expr::ParSub { index, .. } => calls_in_expr(index, out),
            _ => {}
        }
    }
    let mut edges: FxHashMap<&str, Vec<String>> = FxHashMap::default();
    for f in &ast.funcs {
        let mut out = Vec::new();
        f.body.iter().for_each(|s| calls_in_stmt(s, &mut out));
        edges.insert(&f.name, out);
    }
    let mut result = FxHashMap::default();
    for f in &ast.funcs {
        // DFS from f's callees looking for f.
        let mut stack: Vec<&str> = edges[f.name.as_str()].iter().map(|s| s.as_str()).collect();
        let mut seen: Vec<&str> = Vec::new();
        let mut rec = false;
        while let Some(g) = stack.pop() {
            if g == f.name {
                rec = true;
                break;
            }
            if seen.contains(&g) {
                continue;
            }
            seen.push(g);
            if let Some(next) = edges.get(g) {
                stack.extend(next.iter().map(|s| s.as_str()));
            }
        }
        result.insert(f.name.clone(), rec);
    }
    result
}

impl<'a> Lowerer<'a> {
    // ---- block plumbing ------------------------------------------------

    fn new_block(&mut self) -> StateId {
        self.graph.add(MimdState::new(vec![], Terminator::Halt))
    }

    fn start_block(&mut self, id: StateId) {
        debug_assert!(self.sealed, "starting a block while another is open");
        self.cur = id;
        self.cur_ops = Vec::new();
        self.sealed = false;
    }

    fn seal(&mut self, term: Terminator) {
        debug_assert!(!self.sealed, "sealing a sealed block");
        let st = self.graph.state_mut(self.cur);
        st.ops = std::mem::take(&mut self.cur_ops);
        st.term = term;
        self.sealed = true;
    }

    fn emit(&mut self, op: Op) {
        debug_assert!(!self.sealed, "emitting into a sealed block");
        self.cur_ops.push(op);
    }

    /// After a diverging statement (`halt`, `break`, `return`), any further
    /// code in the source block is unreachable; give it a fresh block that
    /// compaction will discard.
    fn start_unreachable(&mut self) {
        let b = self.new_block();
        self.start_block(b);
    }

    // ---- symbols -------------------------------------------------------

    fn alloc(&mut self, space: Space) -> Addr {
        match space {
            Space::Poly => {
                let a = Addr::poly(self.layout.poly_words);
                self.layout.poly_words += 1;
                a
            }
            Space::Mono => {
                let a = Addr::mono(self.layout.mono_words);
                self.layout.mono_words += 1;
                a
            }
        }
    }

    fn declare(&mut self, d: &VarDecl, func: &str) -> Result<(), LowerError> {
        if d.ty == Type::Void {
            return Err(LowerError {
                msg: format!("variable `{}` cannot be void", d.name),
                pos: d.pos,
            });
        }
        let scope = self.scopes.last_mut().unwrap();
        if scope.contains_key(&d.name) {
            return Err(LowerError {
                msg: format!("`{}` already declared in this scope", d.name),
                pos: d.pos,
            });
        }
        let space = match d.storage {
            Storage::Mono => Space::Mono,
            Storage::Poly => Space::Poly,
        };
        // Recursive copies pre-allocate their poly locals (see
        // `ActiveCopy::prealloc`); bind the next one in source order.
        let prealloc = (space == Space::Poly)
            .then(|| {
                self.active.last_mut().and_then(|c| {
                    let a = c.prealloc.get(c.prealloc_next).copied();
                    if a.is_some() {
                        c.prealloc_next += 1;
                    }
                    a
                })
            })
            .flatten();
        let addr = prealloc.unwrap_or_else(|| self.alloc(space));
        self.scopes.last_mut().unwrap().insert(
            d.name.clone(),
            VarInfo {
                addr,
                ty: d.ty,
                storage: d.storage,
            },
        );
        self.layout.vars.push(VarRecord {
            func: func.into(),
            name: d.name.clone(),
            addr,
            ty: d.ty,
            storage: d.storage,
        });
        if let Some(init) = &d.init {
            let t = self.expr(init, true)?;
            self.coerce(t, d.ty, init.pos())?;
            self.emit(Op::St(addr));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<VarInfo, LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(v.clone());
            }
        }
        Err(LowerError {
            msg: format!("undeclared variable `{name}`"),
            pos,
        })
    }

    // ---- types ---------------------------------------------------------

    /// Infer the type of an expression without emitting code.
    fn infer(&self, e: &Expr) -> Result<Type, LowerError> {
        Ok(match e {
            Expr::Int(..) | Expr::PeId(_) | Expr::NProc(_) => Type::Int,
            Expr::Float(..) => Type::Float,
            Expr::Var(name, pos) => self.lookup(name, *pos)?.ty,
            Expr::ParSub { name, pos, .. } => self.lookup(name, *pos)?.ty,
            Expr::Assign { target, .. } => match target {
                LValue::Var(name) => self.lookup(name, e.pos())?.ty,
                LValue::ParSub { name, .. } => self.lookup(name, e.pos())?.ty,
            },
            Expr::Un { op, e: inner, .. } => match op {
                AstUnOp::Not => Type::Int,
                AstUnOp::BitNot => Type::Int,
                AstUnOp::Neg => self.infer(inner)?,
            },
            Expr::Bin { op, l, r, .. } => match op {
                AstBinOp::Eq
                | AstBinOp::Ne
                | AstBinOp::Lt
                | AstBinOp::Le
                | AstBinOp::Gt
                | AstBinOp::Ge
                | AstBinOp::LogAnd
                | AstBinOp::LogOr => Type::Int,
                AstBinOp::BitAnd
                | AstBinOp::BitOr
                | AstBinOp::BitXor
                | AstBinOp::Shl
                | AstBinOp::Shr
                | AstBinOp::Rem => Type::Int,
                AstBinOp::Add | AstBinOp::Sub | AstBinOp::Mul | AstBinOp::Div => {
                    if self.infer(l)? == Type::Float || self.infer(r)? == Type::Float {
                        Type::Float
                    } else {
                        Type::Int
                    }
                }
            },
            Expr::Call { name, pos, .. } => {
                self.ast
                    .func(name)
                    .ok_or_else(|| LowerError {
                        msg: format!("unknown function `{name}`"),
                        pos: *pos,
                    })?
                    .ret
            }
        })
    }

    /// Emit a conversion of the stack top from `from` to `to`.
    fn coerce(&mut self, from: Type, to: Type, pos: Pos) -> Result<(), LowerError> {
        match (from, to) {
            (a, b) if a == b => Ok(()),
            (Type::Int, Type::Float) => {
                self.emit(Op::Un(UnOp::IntToFloat));
                Ok(())
            }
            (Type::Float, Type::Int) => {
                self.emit(Op::Un(UnOp::FloatToInt));
                Ok(())
            }
            (Type::Void, _) | (_, Type::Void) => Err(LowerError {
                msg: "void value used".into(),
                pos,
            }),
            _ => unreachable!(),
        }
    }

    /// Normalize the stack top of type `t` to an integer truth value.
    fn truthify(&mut self, t: Type, pos: Pos) -> Result<(), LowerError> {
        match t {
            Type::Int => Ok(()),
            Type::Float => {
                self.emit(Op::PushF(0f64.to_bits()));
                self.emit(Op::Bin(BinOp::FNe));
                Ok(())
            }
            Type::Void => Err(LowerError {
                msg: "void value used as condition".into(),
                pos,
            }),
        }
    }

    // ---- statements ----------------------------------------------------

    fn cur_func_name(&self) -> String {
        self.active
            .last()
            .map(|c| c.func.clone())
            .unwrap_or_else(|| "<global>".into())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Decl(d) => {
                let f = self.cur_func_name();
                self.declare(d, &f)
            }
            Stmt::Decls(ds) => {
                let f = self.cur_func_name();
                for d in ds {
                    self.declare(d, &f)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e, false)?;
                Ok(())
            }
            Stmt::Empty => Ok(()),
            Stmt::Block(v) => {
                self.scopes.push(FxHashMap::default());
                for s in v {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let t = self.expr(cond, true)?;
                self.truthify(t, cond.pos())?;
                let then_b = self.new_block();
                let join = self.new_block();
                let else_b = if els.is_some() {
                    self.new_block()
                } else {
                    join
                };
                self.seal(Terminator::Branch {
                    t: then_b,
                    f: else_b,
                });
                self.start_block(then_b);
                self.stmt(then)?;
                if !self.sealed {
                    self.seal(Terminator::Jump(join));
                }
                if let Some(els) = els {
                    self.start_block(else_b);
                    self.stmt(els)?;
                    if !self.sealed {
                        self.seal(Terminator::Jump(join));
                    }
                }
                self.start_block(join);
                Ok(())
            }
            // §4.2 normalization: while → if + do-while.
            Stmt::While { cond, body } => {
                let desugared = Stmt::If {
                    cond: cond.clone(),
                    then: Box::new(Stmt::DoWhile {
                        body: body.clone(),
                        cond: cond.clone(),
                    }),
                    els: None,
                };
                self.stmt(&desugared)
            }
            Stmt::DoWhile { body, cond } => {
                let body_b = self.new_block();
                let cond_b = self.new_block();
                let exit = self.new_block();
                self.seal(Terminator::Jump(body_b));
                self.start_block(body_b);
                self.loops.push(LoopCtx {
                    cont: cond_b,
                    brk: exit,
                });
                self.scopes.push(FxHashMap::default());
                self.stmt(body)?;
                self.scopes.pop();
                self.loops.pop();
                if !self.sealed {
                    self.seal(Terminator::Jump(cond_b));
                }
                self.start_block(cond_b);
                let t = self.expr(cond, true)?;
                self.truthify(t, cond.pos())?;
                self.seal(Terminator::Branch { t: body_b, f: exit });
                self.start_block(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(FxHashMap::default());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let body_b = self.new_block();
                let step_b = self.new_block();
                let cond_b = self.new_block();
                let exit = self.new_block();
                // §4.2 one-or-more normalization: test once before entry.
                if let Some(c) = cond {
                    let t = self.expr(c, true)?;
                    self.truthify(t, c.pos())?;
                    self.seal(Terminator::Branch { t: body_b, f: exit });
                } else {
                    self.seal(Terminator::Jump(body_b));
                }
                self.start_block(body_b);
                self.loops.push(LoopCtx {
                    cont: step_b,
                    brk: exit,
                });
                self.stmt(body)?;
                self.loops.pop();
                if !self.sealed {
                    self.seal(Terminator::Jump(step_b));
                }
                self.start_block(step_b);
                if let Some(st) = step {
                    self.expr(st, false)?;
                }
                self.seal(Terminator::Jump(cond_b));
                self.start_block(cond_b);
                if let Some(c) = cond {
                    let t = self.expr(c, true)?;
                    self.truthify(t, c.pos())?;
                    self.seal(Terminator::Branch { t: body_b, f: exit });
                } else {
                    self.seal(Terminator::Jump(body_b));
                }
                self.start_block(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Break(pos) => {
                let Some(ctx) = self.loops.last() else {
                    return Err(LowerError {
                        msg: "`break` outside loop".into(),
                        pos: *pos,
                    });
                };
                let brk = ctx.brk;
                self.seal(Terminator::Jump(brk));
                self.start_unreachable();
                Ok(())
            }
            Stmt::Continue(pos) => {
                let Some(ctx) = self.loops.last() else {
                    return Err(LowerError {
                        msg: "`continue` outside loop".into(),
                        pos: *pos,
                    });
                };
                let cont = ctx.cont;
                self.seal(Terminator::Jump(cont));
                self.start_unreachable();
                Ok(())
            }
            Stmt::Wait(_) => {
                // Barrier: entry to the next state is the synchronization
                // point (§2.6).
                let b = self.new_block();
                self.graph.state_mut(b).barrier = true;
                self.seal(Terminator::Jump(b));
                self.start_block(b);
                Ok(())
            }
            Stmt::Halt(_) => {
                self.seal(Terminator::Halt);
                self.start_unreachable();
                Ok(())
            }
            Stmt::Return(e, pos) => self.lower_return(e.as_ref(), *pos),
            Stmt::Spawn { name, args, pos } => self.lower_spawn(name, args, *pos),
        }
    }

    fn lower_return(&mut self, e: Option<&Expr>, pos: Pos) -> Result<(), LowerError> {
        let copy = self.active.last().ok_or(LowerError {
            msg: "`return` outside of a function".into(),
            pos,
        })?;
        let (ret_slot, ret_ty, halt, recursive) = (
            copy.ret_slot,
            copy.ret_ty,
            copy.halt_on_return,
            copy.recursive,
        );
        match (e, ret_ty) {
            (Some(_), Type::Void) => {
                return Err(LowerError {
                    msg: "returning a value from a void function".into(),
                    pos,
                })
            }
            (Some(expr), _) => {
                let t = self.expr(expr, true)?;
                self.coerce(t, ret_ty, pos)?;
                self.emit(Op::St(ret_slot.expect("non-void has a slot")));
            }
            (None, _) => {}
        }
        if halt {
            self.seal(Terminator::Halt);
        } else if recursive {
            // Pop the return-site id; the multiway branch targets are
            // patched in when the copy completes (§2.2).
            self.emit(Op::PopRet);
            let cur = self.cur;
            self.seal(Terminator::Halt); // placeholder
            self.active.last_mut().unwrap().ret_blocks.push(cur);
        } else {
            let cur = self.cur;
            self.seal(Terminator::Halt); // placeholder, becomes Jump
            self.active.last_mut().unwrap().ret_blocks.push(cur);
        }
        self.start_unreachable();
        Ok(())
    }

    fn lower_spawn(&mut self, name: &str, args: &[Expr], pos: Pos) -> Result<(), LowerError> {
        let func = self
            .ast
            .func(name)
            .ok_or_else(|| LowerError {
                msg: format!("unknown function `{name}`"),
                pos,
            })?
            .clone();
        if args.len() != func.params.len() {
            return Err(LowerError {
                msg: format!(
                    "`{name}` expects {} argument(s), got {}",
                    func.params.len(),
                    args.len()
                ),
                pos,
            });
        }
        // Get (or build) the reusable spawn copy of this function.
        let (entry, param_addrs) = if let Some(e) = self.spawn_entries.get(name) {
            e.clone()
        } else {
            self.build_spawn_copy(&func, pos)?
        };
        // The parent evaluates the arguments into the child's parameter
        // slots (in the parent's own poly memory); the recruited PE copies
        // the parent's locals on spawn, so the values transfer (§3.2.5).
        for (arg, (pty, _)) in args.iter().zip(&func.params) {
            let t = self.expr(arg, true)?;
            self.coerce(t, *pty, arg.pos())?;
        }
        // Stored in reverse so evaluation order stays left-to-right.
        for (addr, _) in param_addrs
            .iter()
            .zip(&func.params)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            self.emit(Op::St(*addr));
        }
        let cont = self.new_block();
        self.seal(Terminator::Spawn {
            child: entry,
            next: cont,
        });
        self.start_block(cont);
        Ok(())
    }

    /// Lower a function body as a spawned-process copy: entered by a
    /// recruited PE, returns become `Halt` (the PE goes back to the pool).
    fn build_spawn_copy(
        &mut self,
        func: &Func,
        pos: Pos,
    ) -> Result<(StateId, Vec<Addr>), LowerError> {
        if self.active.len() >= MAX_INLINE_DEPTH {
            return Err(LowerError {
                msg: "inline expansion too deep".into(),
                pos,
            });
        }
        let entry = self.new_block();
        let param_addrs: Vec<Addr> = func
            .params
            .iter()
            .map(|_| self.alloc(Space::Poly))
            .collect();
        // Register before lowering the body so recursive spawns reuse it.
        self.spawn_entries
            .insert(func.name.clone(), (entry, param_addrs.clone()));

        let ret_slot = (func.ret != Type::Void).then(|| self.alloc(Space::Poly));
        let saved = self.suspend_block();
        self.scopes.push(FxHashMap::default());
        for ((ty, pname), addr) in func.params.iter().zip(&param_addrs) {
            self.scopes.last_mut().unwrap().insert(
                pname.clone(),
                VarInfo {
                    addr: *addr,
                    ty: *ty,
                    storage: Storage::Poly,
                },
            );
            self.layout.vars.push(VarRecord {
                func: func.name.clone(),
                name: pname.clone(),
                addr: *addr,
                ty: *ty,
                storage: Storage::Poly,
            });
        }
        // A spawned process that recurses needs the full §2.2 machinery:
        // its returns are multiway branches whose site 0 is an explicit
        // halt block (falling out of the process), and the recruit itself
        // pushes site 0 since no caller did.
        let recursive = *self.recursive_funcs.get(&func.name).unwrap_or(&false);
        let halt_cont = recursive.then(|| self.new_block());
        let (slots, prealloc) = if recursive {
            let prealloc: Vec<Addr> = (0..count_poly_decls(&func.body))
                .map(|_| self.alloc(Space::Poly))
                .collect();
            let mut slots = param_addrs.clone();
            slots.extend(prealloc.iter().copied());
            (slots, prealloc)
        } else {
            (vec![], vec![])
        };
        self.active.push(ActiveCopy {
            func: func.name.clone(),
            entry,
            ret_slot,
            ret_ty: func.ret,
            ret_targets: halt_cont.into_iter().collect(),
            ret_blocks: vec![],
            halt_on_return: !recursive,
            recursive,
            params: param_addrs.clone(),
            slots,
            prealloc,
            prealloc_next: 0,
        });
        self.start_block(entry);
        if recursive {
            self.emit(Op::Push(0));
            self.emit(Op::PushRet);
        }
        for s in &func.body {
            self.stmt(s)?;
        }
        if !self.sealed {
            if recursive {
                self.lower_return(None, func.pos)?;
                if !self.sealed {
                    self.seal(Terminator::Halt);
                }
            } else {
                self.seal(Terminator::Halt);
            }
        }
        let copy = self.active.pop().unwrap();
        for b in &copy.ret_blocks {
            self.graph.state_mut(*b).term = Terminator::Multi(copy.ret_targets.clone());
        }
        self.scopes.pop();
        self.resume_block(saved);
        Ok((entry, param_addrs))
    }

    /// Save the in-progress block so a nested body can be lowered.
    fn suspend_block(&mut self) -> (StateId, Vec<Op>, bool) {
        let saved = (self.cur, std::mem::take(&mut self.cur_ops), self.sealed);
        self.sealed = true;
        saved
    }

    fn resume_block(&mut self, saved: (StateId, Vec<Op>, bool)) {
        self.cur = saved.0;
        self.cur_ops = saved.1;
        self.sealed = saved.2;
    }

    // ---- expressions ---------------------------------------------------

    /// Lower an expression; leaves one value on the stack iff `need`.
    /// Returns the value's type (`Void` possible only when `!need` or for
    /// void calls, which error when `need`).
    fn expr(&mut self, e: &Expr, need: bool) -> Result<Type, LowerError> {
        match e {
            Expr::Int(v, _) => {
                if need {
                    self.emit(Op::Push(*v));
                }
                Ok(Type::Int)
            }
            Expr::Float(v, _) => {
                if need {
                    self.emit(Op::PushF(v.to_bits()));
                }
                Ok(Type::Float)
            }
            Expr::PeId(_) => {
                if need {
                    self.emit(Op::PeId);
                }
                Ok(Type::Int)
            }
            Expr::NProc(_) => {
                if need {
                    self.emit(Op::NProc);
                }
                Ok(Type::Int)
            }
            Expr::Var(name, pos) => {
                let v = self.lookup(name, *pos)?;
                if need {
                    self.emit(Op::Ld(v.addr));
                }
                Ok(v.ty)
            }
            Expr::ParSub { name, index, pos } => {
                let v = self.lookup(name, *pos)?;
                if v.storage != Storage::Poly {
                    return Err(LowerError {
                        msg: format!("parallel subscript on `mono` variable `{name}`"),
                        pos: *pos,
                    });
                }
                let it = self.expr(index, true)?;
                self.coerce(it, Type::Int, index.pos())?;
                self.emit(Op::LdRemote(v.addr));
                if !need {
                    self.emit(Op::Pop(1));
                }
                Ok(v.ty)
            }
            Expr::Un { op, e: inner, pos } => {
                let t = self.expr(inner, true)?;
                let rt = match op {
                    AstUnOp::Neg => {
                        match t {
                            Type::Int => self.emit(Op::Un(UnOp::Neg)),
                            Type::Float => self.emit(Op::Un(UnOp::FNeg)),
                            Type::Void => {
                                return Err(LowerError {
                                    msg: "void operand".into(),
                                    pos: *pos,
                                })
                            }
                        }
                        t
                    }
                    AstUnOp::Not => {
                        match t {
                            Type::Int => self.emit(Op::Un(UnOp::Not)),
                            Type::Float => {
                                self.emit(Op::PushF(0f64.to_bits()));
                                self.emit(Op::Bin(BinOp::FEq));
                            }
                            Type::Void => {
                                return Err(LowerError {
                                    msg: "void operand".into(),
                                    pos: *pos,
                                })
                            }
                        }
                        Type::Int
                    }
                    AstUnOp::BitNot => {
                        if t != Type::Int {
                            return Err(LowerError {
                                msg: "`~` requires an int operand".into(),
                                pos: *pos,
                            });
                        }
                        self.emit(Op::Un(UnOp::BitNot));
                        Type::Int
                    }
                };
                if !need {
                    self.emit(Op::Pop(1));
                }
                Ok(rt)
            }
            Expr::Bin { op, l, r, pos } => {
                let rt = self.lower_bin(*op, l, r, *pos)?;
                if !need {
                    self.emit(Op::Pop(1));
                }
                Ok(rt)
            }
            Expr::Assign {
                target,
                op,
                value,
                pos,
            } => self.lower_assign(target, *op, value, *pos, need),
            Expr::Call { name, args, pos } => self.lower_call(name, args, *pos, need),
        }
    }

    fn lower_bin(
        &mut self,
        op: AstBinOp,
        l: &Expr,
        r: &Expr,
        pos: Pos,
    ) -> Result<Type, LowerError> {
        use AstBinOp::*;
        match op {
            LogAnd | LogOr => {
                // Non-short-circuit (documented): normalize to 0/1, combine.
                let tl = self.expr(l, true)?;
                self.truthify(tl, l.pos())?;
                self.emit(Op::Push(0));
                self.emit(Op::Bin(BinOp::Ne));
                let tr = self.expr(r, true)?;
                self.truthify(tr, r.pos())?;
                self.emit(Op::Push(0));
                self.emit(Op::Bin(BinOp::Ne));
                self.emit(Op::Bin(if op == LogAnd { BinOp::And } else { BinOp::Or }));
                Ok(Type::Int)
            }
            BitAnd | BitOr | BitXor | Shl | Shr | Rem => {
                let tl = self.expr(l, true)?;
                if tl != Type::Int {
                    return Err(LowerError {
                        msg: format!("operator `{op:?}` requires int operands"),
                        pos,
                    });
                }
                let tr = self.expr(r, true)?;
                if tr != Type::Int {
                    return Err(LowerError {
                        msg: format!("operator `{op:?}` requires int operands"),
                        pos,
                    });
                }
                let b = match op {
                    BitAnd => BinOp::And,
                    BitOr => BinOp::Or,
                    BitXor => BinOp::Xor,
                    Shl => BinOp::Shl,
                    Shr => BinOp::Shr,
                    Rem => BinOp::Rem,
                    _ => unreachable!(),
                };
                self.emit(Op::Bin(b));
                Ok(Type::Int)
            }
            Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge => {
                let tl = self.infer(l)?;
                let tr = self.infer(r)?;
                let unified = if tl == Type::Float || tr == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                };
                let got_l = self.expr(l, true)?;
                debug_assert_eq!(got_l, tl);
                self.coerce(tl, unified, l.pos())?;
                let got_r = self.expr(r, true)?;
                debug_assert_eq!(got_r, tr);
                self.coerce(tr, unified, r.pos())?;
                let (ib, fb) = match op {
                    Add => (BinOp::Add, BinOp::FAdd),
                    Sub => (BinOp::Sub, BinOp::FSub),
                    Mul => (BinOp::Mul, BinOp::FMul),
                    Div => (BinOp::Div, BinOp::FDiv),
                    Eq => (BinOp::Eq, BinOp::FEq),
                    Ne => (BinOp::Ne, BinOp::FNe),
                    Lt => (BinOp::Lt, BinOp::FLt),
                    Le => (BinOp::Le, BinOp::FLe),
                    Gt => (BinOp::Gt, BinOp::FGt),
                    Ge => (BinOp::Ge, BinOp::FGe),
                    _ => unreachable!(),
                };
                self.emit(Op::Bin(if unified == Type::Float { fb } else { ib }));
                Ok(match op {
                    Add | Sub | Mul | Div => unified,
                    _ => Type::Int,
                })
            }
        }
    }

    fn lower_assign(
        &mut self,
        target: &LValue,
        op: Option<AstBinOp>,
        value: &Expr,
        pos: Pos,
        need: bool,
    ) -> Result<Type, LowerError> {
        match target {
            LValue::Var(name) => {
                let v = self.lookup(name, pos)?;
                if let Some(op) = op {
                    // x op= e  ≡  x = x op e (with the usual promotions).
                    let lhs = Expr::Var(name.clone(), pos);
                    let combined = Expr::Bin {
                        op,
                        l: Box::new(lhs),
                        r: Box::new(value.clone()),
                        pos,
                    };
                    let t = self.expr(&combined, true)?;
                    self.coerce(t, v.ty, pos)?;
                } else {
                    let t = self.expr(value, true)?;
                    self.coerce(t, v.ty, pos)?;
                }
                if need {
                    self.emit(Op::Dup);
                }
                self.emit(Op::St(v.addr));
                Ok(v.ty)
            }
            LValue::ParSub { name, index } => {
                if op.is_some() {
                    return Err(LowerError {
                        msg: "compound assignment to a parallel subscript is not supported".into(),
                        pos,
                    });
                }
                let v = self.lookup(name, pos)?;
                if v.storage != Storage::Poly {
                    return Err(LowerError {
                        msg: format!("parallel subscript on `mono` variable `{name}`"),
                        pos,
                    });
                }
                let t = self.expr(value, true)?;
                self.coerce(t, v.ty, pos)?;
                if need {
                    self.emit(Op::Dup);
                }
                let it = self.expr(index, true)?;
                self.coerce(it, Type::Int, index.pos())?;
                self.emit(Op::StRemote(v.addr));
                Ok(v.ty)
            }
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
        need: bool,
    ) -> Result<Type, LowerError> {
        let func = self
            .ast
            .func(name)
            .ok_or_else(|| LowerError {
                msg: format!("unknown function `{name}`"),
                pos,
            })?
            .clone();
        if args.len() != func.params.len() {
            return Err(LowerError {
                msg: format!(
                    "`{name}` expects {} argument(s), got {}",
                    func.params.len(),
                    args.len()
                ),
                pos,
            });
        }
        if need && func.ret == Type::Void {
            return Err(LowerError {
                msg: format!("void function `{name}` used as a value"),
                pos,
            });
        }

        // §2.2: a call to a function already being expanded links back to
        // the existing copy (recursion), registering this continuation as
        // one more return target of its multiway branch. Re-entering the
        // copy clobbers the slots of every copy on the chain from it down
        // to here, so those are caller-saved on the per-PE operand stack
        // and restored at the continuation.
        if let Some(ci) = self.active.iter().rposition(|c| c.func == name) {
            let (entry, param_slots, ret_slot) = {
                let copy = &self.active[ci];
                debug_assert!(copy.recursive, "linking into a non-recursive copy");
                (copy.entry, copy.params.clone(), copy.ret_slot)
            };
            let save: Vec<Addr> = self.active[ci..]
                .iter()
                .flat_map(|c| c.slots.iter().copied())
                .collect();
            for a in &save {
                self.emit(Op::Ld(*a));
            }
            // Evaluate every argument before storing any (a store could
            // clobber a slot a later argument reads).
            for (arg, (pty, _)) in args.iter().zip(&func.params) {
                let t = self.expr(arg, true)?;
                self.coerce(t, *pty, arg.pos())?;
            }
            for addr in param_slots.iter().rev() {
                self.emit(Op::St(*addr));
            }
            let cont = self.new_block();
            let site = {
                let copy = &mut self.active[ci];
                copy.ret_targets.push(cont);
                (copy.ret_targets.len() - 1) as i64
            };
            self.emit(Op::Push(site));
            self.emit(Op::PushRet);
            self.seal(Terminator::Jump(entry));
            self.start_block(cont);
            for a in save.iter().rev() {
                self.emit(Op::St(*a));
            }
            if need {
                self.emit(Op::Ld(ret_slot.expect("non-void")));
            }
            return Ok(func.ret);
        }

        if self.active.len() >= MAX_INLINE_DEPTH {
            return Err(LowerError {
                msg: "inline expansion too deep".into(),
                pos,
            });
        }

        // Fresh inline copy for this call site.
        let recursive = *self.recursive_funcs.get(name).unwrap_or(&false);
        let param_addrs: Vec<Addr> = func
            .params
            .iter()
            .map(|_| self.alloc(Space::Poly))
            .collect();
        let ret_slot = (func.ret != Type::Void).then(|| self.alloc(Space::Poly));
        for (arg, ((pty, _), addr)) in args.iter().zip(func.params.iter().zip(&param_addrs)) {
            let t = self.expr(arg, true)?;
            self.coerce(t, *pty, arg.pos())?;
            self.emit(Op::St(*addr));
        }
        let entry = self.new_block();
        let cont = self.new_block();
        if recursive {
            // Initial activation returns to site 0.
            self.emit(Op::Push(0));
            self.emit(Op::PushRet);
        }
        self.seal(Terminator::Jump(entry));

        self.scopes.push(FxHashMap::default());
        for ((ty, pname), addr) in func.params.iter().zip(&param_addrs) {
            self.scopes.last_mut().unwrap().insert(
                pname.clone(),
                VarInfo {
                    addr: *addr,
                    ty: *ty,
                    storage: Storage::Poly,
                },
            );
            self.layout.vars.push(VarRecord {
                func: func.name.clone(),
                name: pname.clone(),
                addr: *addr,
                ty: *ty,
                storage: Storage::Poly,
            });
        }
        let (slots, prealloc) = if recursive {
            let prealloc: Vec<Addr> = (0..count_poly_decls(&func.body))
                .map(|_| self.alloc(Space::Poly))
                .collect();
            let mut slots = param_addrs.clone();
            slots.extend(prealloc.iter().copied());
            (slots, prealloc)
        } else {
            (vec![], vec![])
        };
        self.active.push(ActiveCopy {
            func: name.to_string(),
            entry,
            ret_slot,
            ret_ty: func.ret,
            ret_targets: vec![cont],
            ret_blocks: vec![],
            halt_on_return: false,
            recursive,
            params: param_addrs.clone(),
            slots,
            prealloc,
            prealloc_next: 0,
        });
        self.start_block(entry);
        for s in &func.body {
            self.stmt(s)?;
        }
        if !self.sealed {
            // Implicit return (no value).
            self.lower_return(None, func.pos)?;
            // lower_return opened an unreachable block; close it.
            if !self.sealed {
                self.seal(Terminator::Halt);
            }
        }
        let copy = self.active.pop().unwrap();
        self.scopes.pop();

        // Patch return blocks now that every return site is known (§2.2:
        // "we can replace the return statements with the appropriate
        // multiway branch").
        for b in &copy.ret_blocks {
            let term = if copy.recursive {
                Terminator::Multi(copy.ret_targets.clone())
            } else {
                Terminator::Jump(copy.ret_targets[0])
            };
            self.graph.state_mut(*b).term = term;
        }

        self.start_block(cont);
        if need {
            self.emit(Op::Ld(copy.ret_slot.expect("non-void checked above")));
        }
        Ok(func.ret)
    }
}

/// Number of `poly` declarations a function body makes, in the order the
/// lowering will encounter them — used to pre-allocate a recursive copy's
/// local slots so recursive links can caller-save them all.
fn count_poly_decls(stmts: &[Stmt]) -> usize {
    fn one(s: &Stmt) -> usize {
        match s {
            Stmt::Decl(d) => (d.storage == Storage::Poly) as usize,
            Stmt::Decls(ds) => ds.iter().filter(|d| d.storage == Storage::Poly).count(),
            Stmt::Block(v) => v.iter().map(one).sum(),
            Stmt::If { then, els, .. } => one(then) + els.as_ref().map(|e| one(e)).unwrap_or(0),
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => one(body),
            Stmt::For { init, body, .. } => init.as_ref().map(|i| one(i)).unwrap_or(0) + one(body),
            _ => 0,
        }
    }
    stmts.iter().map(one).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Program {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> LowerError {
        lower(&parse(src).unwrap()).unwrap_err()
    }

    /// Listing 4 must lower to Figure 1's shape: 4 states, branch/loop/loop/end.
    #[test]
    fn listing4_graph_shape() {
        let p = compile(
            r#"
            main() {
                poly int x;
                if (x) { do { x = 1; } while (x); }
                else   { do { x = 2; } while (x); }
                return(x);
            }
            "#,
        );
        let g = &p.graph;
        assert_eq!(
            g.len(),
            4,
            "Figure 1 has 4 states:\n{}",
            msc_ir::render::text(g, &Default::default())
        );
        // Start state branches to the two loop states.
        let (t, f) = match g.state(g.start).term {
            Terminator::Branch { t, f } => (t, f),
            ref x => panic!("start should branch, got {x:?}"),
        };
        assert_ne!(t, f);
        // Each loop state branches to itself and the final state.
        for loop_state in [t, f] {
            match g.state(loop_state).term {
                Terminator::Branch { t: lt, f: lf } => {
                    assert_eq!(lt, loop_state, "do-while loops back on TRUE");
                    assert_eq!(g.state(lf).term, Terminator::Halt, "FALSE exits to F");
                }
                ref x => panic!("loop state has {x:?}"),
            }
        }
    }

    #[test]
    fn missing_main_rejected() {
        let e = lower(&parse("int f() { return 1; }").unwrap()).unwrap_err();
        assert!(e.msg.contains("main"));
    }

    #[test]
    fn undeclared_variable_rejected() {
        let e = compile_err("main() { x = 1; }");
        assert!(e.msg.contains("undeclared"), "{e}");
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = compile_err("main() { poly int x; poly int x; }");
        assert!(e.msg.contains("already declared"), "{e}");
    }

    #[test]
    fn scope_shadowing_allowed() {
        compile("main() { poly int x = 1; { poly int x = 2; x = 3; } x = 4; }");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = compile_err("main() { break; }");
        assert!(e.msg.contains("break"), "{e}");
    }

    #[test]
    fn mono_parsub_rejected() {
        let e = compile_err("main() { mono int m; poly int x; x = m[[0]]; }");
        assert!(e.msg.contains("mono"), "{e}");
    }

    #[test]
    fn compound_parsub_rejected() {
        let e = compile_err("main() { poly int x; x[[0]] += 1; }");
        assert!(e.msg.contains("compound"), "{e}");
    }

    #[test]
    fn void_as_value_rejected() {
        let e = compile_err("void f() { } main() { poly int x; x = f(); }");
        assert!(e.msg.contains("void"), "{e}");
    }

    #[test]
    fn arg_count_checked() {
        let e = compile_err("int f(int a) { return a; } main() { f(); }");
        assert!(e.msg.contains("argument"), "{e}");
    }

    #[test]
    fn wait_creates_barrier_state() {
        let p = compile("main() { poly int x; x = 1; wait; x = 2; }");
        let barriers: Vec<_> = p
            .graph
            .ids()
            .filter(|&i| p.graph.state(i).barrier)
            .collect();
        assert_eq!(barriers.len(), 1);
        // Code after the wait lives in the barrier state.
        assert!(!p.graph.state(barriers[0]).ops.is_empty());
    }

    #[test]
    fn non_recursive_call_inlines_flat() {
        let p = compile(
            r#"
            int add1(int a) { return a + 1; }
            main() { poly int x; x = add1(41); return(x); }
            "#,
        );
        // Inline expansion means no Multi terminators anywhere.
        for id in p.graph.ids() {
            assert!(!matches!(p.graph.state(id).term, Terminator::Multi(_)));
        }
        // And after straightening the whole thing is one straight line.
        assert_eq!(
            p.graph.len(),
            1,
            "{}",
            msc_ir::render::text(&p.graph, &Default::default())
        );
    }

    #[test]
    fn two_call_sites_get_two_copies() {
        let p = compile(
            r#"
            int sq(int a) { return a * a; }
            main() { poly int x; x = sq(2) + sq(3); return(x); }
            "#,
        );
        // Two distinct parameter slots for `a` were allocated.
        let a_slots: Vec<_> = p.layout.vars.iter().filter(|v| v.name == "a").collect();
        assert_eq!(a_slots.len(), 2);
        assert_ne!(a_slots[0].addr, a_slots[1].addr);
    }

    #[test]
    fn recursive_function_gets_multiway_returns() {
        let p = compile(
            r#"
            int fact(int n) {
                if (n <= 1) return 1;
                return n * fact(n - 1);
            }
            main() { poly int x; x = fact(5); return(x); }
            "#,
        );
        let multis: Vec<_> = p
            .graph
            .ids()
            .filter_map(|i| match &p.graph.state(i).term {
                Terminator::Multi(v) => Some(v.len()),
                _ => None,
            })
            .collect();
        assert!(
            !multis.is_empty(),
            "recursive returns must be multiway branches"
        );
        // fact has two return sites: the external call and the internal
        // recursive one.
        assert!(multis.iter().all(|&n| n == 2), "{multis:?}");
        // The call stack ops are present.
        let has_pushret = p
            .graph
            .ids()
            .any(|i| p.graph.state(i).ops.contains(&Op::PushRet));
        let has_popret = p
            .graph
            .ids()
            .any(|i| p.graph.state(i).ops.contains(&Op::PopRet));
        assert!(has_pushret && has_popret);
    }

    #[test]
    fn mutually_recursive_functions_lower() {
        let p = compile(
            r#"
            int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
            int is_odd(int n)  { if (n == 0) return 0; return is_even(n - 1); }
            main() { poly int x; x = is_even(pe_id()); return(x); }
            "#,
        );
        assert!(p.graph.len() > 2);
        p.graph.validate().unwrap();
    }

    #[test]
    fn spawn_creates_spawn_terminator() {
        let p = compile(
            r#"
            void worker(int n) { poly int y; y = n * 2; }
            main() { spawn worker(7); }
            "#,
        );
        let spawns: Vec<_> = p
            .graph
            .ids()
            .filter(|&i| matches!(p.graph.state(i).term, Terminator::Spawn { .. }))
            .collect();
        assert_eq!(spawns.len(), 1);
    }

    #[test]
    fn repeated_spawn_reuses_copy() {
        let p = compile(
            r#"
            void worker(int n) { poly int y; y = n; }
            main() { spawn worker(1); spawn worker(2); }
            "#,
        );
        let children: Vec<StateId> = p
            .graph
            .ids()
            .filter_map(|i| match p.graph.state(i).term {
                Terminator::Spawn { child, .. } => Some(child),
                _ => None,
            })
            .collect();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0], children[1], "same spawn copy shared");
    }

    #[test]
    fn while_normalized_to_one_or_more_form() {
        // while (c) must test before entry: start block branches.
        let p = compile("main() { poly int i = 0; while (i < 3) { i += 1; } return(i); }");
        match p.graph.state(p.graph.start).term {
            Terminator::Branch { .. } => {}
            ref t => panic!("start should pre-test the loop, got {t:?}"),
        }
    }

    #[test]
    fn for_loop_with_continue_and_break() {
        let p = compile(
            r#"
            main() {
                poly int i, acc = 0;
                for (i = 0; i < 10; i += 1) {
                    if (i == 2) continue;
                    if (i == 5) break;
                    acc += i;
                }
                return(acc);
            }
            "#,
        );
        p.graph.validate().unwrap();
    }

    #[test]
    fn float_promotion_inserts_conversion() {
        let p = compile("main() { poly float f; f = 1 + 2.5; return(f); }");
        let all_ops: Vec<Op> = p
            .graph
            .ids()
            .flat_map(|i| p.graph.state(i).ops.clone())
            .collect();
        assert!(all_ops.contains(&Op::Bin(BinOp::FAdd)), "{all_ops:?}");
        assert!(all_ops.contains(&Op::Un(UnOp::IntToFloat)), "{all_ops:?}");
    }

    #[test]
    fn mono_store_targets_mono_space() {
        let p = compile("mono int total; main() { total = 5; }");
        let rec = p.layout.var("total").unwrap();
        assert_eq!(rec.addr.space, Space::Mono);
        let all_ops: Vec<Op> = p
            .graph
            .ids()
            .flat_map(|i| p.graph.state(i).ops.clone())
            .collect();
        assert!(all_ops.contains(&Op::St(rec.addr)));
    }

    #[test]
    fn parsub_lowering_uses_router_ops() {
        let p = compile("main() { poly int x, y; x[[pe_id() + 1]] = y[[0]]; }");
        let all_ops: Vec<Op> = p
            .graph
            .ids()
            .flat_map(|i| p.graph.state(i).ops.clone())
            .collect();
        assert!(all_ops.iter().any(|o| matches!(o, Op::LdRemote(_))));
        assert!(all_ops.iter().any(|o| matches!(o, Op::StRemote(_))));
    }

    #[test]
    fn layout_tracks_sizes() {
        let p = compile("mono int a; main() { poly int b; poly float c; }");
        assert_eq!(p.layout.mono_words, 1);
        // b, c, and main's return slot.
        assert_eq!(p.layout.poly_words, 3);
    }

    #[test]
    fn halt_statement_halts() {
        let p = compile("main() { poly int x = 1; halt; }");
        // Only one reachable state ending in Halt.
        assert_eq!(p.graph.len(), 1);
        assert_eq!(p.graph.state(p.graph.start).term, Terminator::Halt);
    }
}
