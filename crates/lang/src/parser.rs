//! Recursive-descent parser for MIMDC.
//!
//! Grammar (C subset of §4.1 plus the paper's parallel extensions):
//!
//! ```text
//! unit      := (var-decl | func)*
//! func      := type? ident '(' params? ')' block        // 'main()' K&R style allowed
//! var-decl  := storage? type ident ('=' expr)? (',' ident ('=' expr)?)* ';'
//! stmt      := var-decl | 'if' '(' expr ')' stmt ('else' stmt)?
//!            | 'while' '(' expr ')' stmt | 'do' stmt 'while' '(' expr ')' ';'
//!            | 'for' '(' (var-decl | expr? ';') expr? ';' expr? ')' stmt
//!            | block | 'return' expr? ';' | 'break' ';' | 'continue' ';'
//!            | 'wait' ';' | 'spawn' ident '(' args? ')' ';' | 'halt' ';'
//!            | expr ';' | ';'
//! expr      := assignment
//! assignment:= lvalue ('='|'+='|…) assignment | logor
//! logor     := logand ('||' logand)*
//! logand    := bitor ('&&' bitor)*
//! bitor     := bitxor ('|' bitxor)*      … usual C precedence …
//! unary     := ('-'|'!'|'~') unary | postfix
//! postfix   := primary
//! primary   := INT | FLOAT | ident | ident '(' args? ')' | ident '[[' expr ']]'
//!            | 'pe_id' '(' ')' | 'nproc' '(' ')' | '(' expr ')'
//! ```

use crate::ast::*;
use crate::token::{lex, LexError, Pos, Tok, Token};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            pos: e.pos,
        }
    }
}

/// Parse a MIMDC translation unit.
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    p.unit()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError {
            msg,
            pos: self.pos(),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---- declarations -------------------------------------------------

    fn unit(&mut self) -> Result<Ast, ParseError> {
        let mut ast = Ast::default();
        while *self.peek() != Tok::Eof {
            if self.is_func_start() {
                ast.funcs.push(self.func()?);
            } else if self.is_decl_start() {
                ast.globals.extend(self.var_decl()?);
            } else {
                return Err(self.err(format!(
                    "expected declaration or function, found `{}`",
                    self.peek()
                )));
            }
        }
        Ok(ast)
    }

    fn is_decl_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwMono | Tok::KwPoly | Tok::KwInt | Tok::KwFloat
        )
    }

    /// A function starts with `type? ident (` where the `(` distinguishes
    /// it from a variable declaration. K&R-style `main() { … }` has no
    /// leading type.
    fn is_func_start(&self) -> bool {
        let mut j = self.i;
        // Optional storage is not allowed on functions; skip type keywords.
        if matches!(self.tokens[j].tok, Tok::KwInt | Tok::KwFloat | Tok::KwVoid) {
            j += 1;
        }
        matches!(self.tokens[j].tok, Tok::Ident(_))
            && j + 1 < self.tokens.len()
            && self.tokens[j + 1].tok == Tok::LParen
    }

    fn type_kw(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Tok::KwInt => Ok(Type::Int),
            Tok::KwFloat => Ok(Type::Float),
            Tok::KwVoid => Ok(Type::Void),
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    fn func(&mut self) -> Result<Func, ParseError> {
        let pos = self.pos();
        let ret = if matches!(self.peek(), Tok::KwInt | Tok::KwFloat | Tok::KwVoid) {
            self.type_kw()?
        } else {
            Type::Int // K&R default
        };
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                // `poly` is implied and tolerated on parameters.
                self.eat(&Tok::KwPoly);
                let ty = if matches!(self.peek(), Tok::KwInt | Tok::KwFloat) {
                    self.type_kw()?
                } else {
                    Type::Int
                };
                let pname = self.ident()?;
                params.push((ty, pname));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated function body".into()));
            }
            body.push(self.stmt()?);
        }
        Ok(Func {
            ret,
            name,
            params,
            body,
            pos,
        })
    }

    /// `storage? type name (= init)? (, name (= init)?)* ;`
    fn var_decl(&mut self) -> Result<Vec<VarDecl>, ParseError> {
        let pos = self.pos();
        let storage = if self.eat(&Tok::KwMono) {
            Storage::Mono
        } else {
            self.eat(&Tok::KwPoly);
            Storage::Poly
        };
        let ty = match self.bump() {
            Tok::KwInt => Type::Int,
            Tok::KwFloat => Type::Float,
            other => return Err(self.err(format!("expected `int` or `float`, found `{other}`"))),
        };
        let mut decls = Vec::new();
        loop {
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(VarDecl {
                storage,
                ty,
                name,
                init,
                pos,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(decls)
    }

    // ---- statements ---------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::KwMono | Tok::KwPoly | Tok::KwInt | Tok::KwFloat => {
                let decls = self.var_decl()?;
                if decls.len() == 1 {
                    Ok(Stmt::Decl(decls.into_iter().next().unwrap()))
                } else {
                    Ok(Stmt::Decls(decls))
                }
            }
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&Tok::KwWhile)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.is_decl_start() {
                    let decls = self.var_decl()?; // consumes ';'
                    Some(Box::new(Stmt::Decls(decls)))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    if *self.peek() == Tok::Eof {
                        return Err(self.err("unterminated block".into()));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Tok::KwReturn => {
                self.bump();
                let e = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e, pos))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::KwWait => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Wait(pos))
            }
            Tok::KwHalt => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Halt(pos))
            }
            Tok::KwSpawn => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Spawn { name, args, pos })
            }
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        let lhs = self.logor()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(AstBinOp::Add),
            Tok::MinusAssign => Some(AstBinOp::Sub),
            Tok::StarAssign => Some(AstBinOp::Mul),
            Tok::SlashAssign => Some(AstBinOp::Div),
            Tok::PercentAssign => Some(AstBinOp::Rem),
            _ => return Ok(lhs),
        };
        let target = match lhs {
            Expr::Var(name, _) => LValue::Var(name),
            Expr::ParSub { name, index, .. } => LValue::ParSub { name, index },
            other => {
                return Err(ParseError {
                    msg: "left side of assignment is not assignable".into(),
                    pos: other.pos(),
                })
            }
        };
        self.bump(); // the assignment operator
        let value = Box::new(self.assignment()?);
        Ok(Expr::Assign {
            target,
            op,
            value,
            pos,
        })
    }

    fn binary_level(
        &mut self,
        ops: &[(Tok, AstBinOp)],
        next: fn(&mut Self) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    let pos = self.pos();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Bin {
                        op: *op,
                        l: Box::new(lhs),
                        r: Box::new(rhs),
                        pos,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Tok::OrOr, AstBinOp::LogOr)], Self::logand)
    }

    fn logand(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Tok::AndAnd, AstBinOp::LogAnd)], Self::bitor)
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Tok::Pipe, AstBinOp::BitOr)], Self::bitxor)
    }

    fn bitxor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Tok::Caret, AstBinOp::BitXor)], Self::bitand)
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Tok::Amp, AstBinOp::BitAnd)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(Tok::EqEq, AstBinOp::Eq), (Tok::NotEq, AstBinOp::Ne)],
            Self::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (Tok::Lt, AstBinOp::Lt),
                (Tok::Le, AstBinOp::Le),
                (Tok::Gt, AstBinOp::Gt),
                (Tok::Ge, AstBinOp::Ge),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(Tok::Shl, AstBinOp::Shl), (Tok::Shr, AstBinOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(Tok::Plus, AstBinOp::Add), (Tok::Minus, AstBinOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (Tok::Star, AstBinOp::Mul),
                (Tok::Slash, AstBinOp::Div),
                (Tok::Percent, AstBinOp::Rem),
            ],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        let op = match self.peek() {
            Tok::Minus => Some(AstUnOp::Neg),
            Tok::Bang => Some(AstUnOp::Not),
            Tok::Tilde => Some(AstUnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = Box::new(self.unary()?);
            return Ok(Expr::Un { op, e, pos });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if *self.peek2() == Tok::LParen {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    return Ok(match name.as_str() {
                        "pe_id" if args.is_empty() => Expr::PeId(pos),
                        "nproc" if args.is_empty() => Expr::NProc(pos),
                        _ => Expr::Call { name, args, pos },
                    });
                }
                if *self.peek2() == Tok::LLBracket {
                    self.bump();
                    self.bump();
                    let index = Box::new(self.expr()?);
                    self.expect(&Tok::RRBracket)?;
                    return Ok(Expr::ParSub { name, index, pos });
                }
                self.bump();
                Ok(Expr::Var(name, pos))
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing4_parses() {
        let ast = parse(
            r#"
            main() {
                poly int x;
                if (x) { do { x = 1; } while (x); }
                else { do { x = 2; } while (x); }
                return(x);
            }
            "#,
        )
        .unwrap();
        assert_eq!(ast.funcs.len(), 1);
        let main = ast.func("main").unwrap();
        assert_eq!(main.ret, Type::Int);
        assert_eq!(main.body.len(), 3);
        assert!(matches!(main.body[0], Stmt::Decl(_)));
        assert!(matches!(main.body[1], Stmt::If { .. }));
        assert!(matches!(main.body[2], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn precedence() {
        let ast = parse("main() { poly int x; x = 1 + 2 * 3; }").unwrap();
        let body = &ast.func("main").unwrap().body;
        let Stmt::Expr(Expr::Assign { value, .. }) = &body[1] else {
            panic!("expected assignment")
        };
        let Expr::Bin {
            op: AstBinOp::Add,
            r,
            ..
        } = value.as_ref()
        else {
            panic!("expected + at top: {value:?}")
        };
        assert!(matches!(
            r.as_ref(),
            Expr::Bin {
                op: AstBinOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parallel_subscript_read_and_write() {
        let ast = parse("main() { poly int x, y; x[[3]] = y[[x + 1]]; }").unwrap();
        let body = &ast.func("main").unwrap().body;
        let Stmt::Expr(Expr::Assign {
            target: LValue::ParSub { name, .. },
            value,
            ..
        }) = body.last().unwrap()
        else {
            panic!("expected parsub assignment: {body:?}")
        };
        assert_eq!(name, "x");
        assert!(matches!(value.as_ref(), Expr::ParSub { .. }));
    }

    #[test]
    fn globals_and_functions() {
        let ast = parse(
            r#"
            mono int total;
            poly float w = 1.5;
            int helper(int a, float b) { return a; }
            main() { helper(1, 2.0); }
            "#,
        )
        .unwrap();
        assert_eq!(ast.globals.len(), 2);
        assert_eq!(ast.globals[0].storage, Storage::Mono);
        assert!(matches!(ast.globals[1].init, Some(Expr::Float(v, _)) if v == 1.5));
        assert_eq!(ast.funcs.len(), 2);
        assert_eq!(ast.func("helper").unwrap().params.len(), 2);
    }

    #[test]
    fn control_flow_statements() {
        let ast = parse(
            r#"
            main() {
                poly int i;
                for (i = 0; i < 10; i += 1) {
                    if (i == 5) continue;
                    if (i > 8) break;
                }
                while (i) { i = i - 1; }
                wait;
                halt;
            }
            "#,
        )
        .unwrap();
        let body = &ast.func("main").unwrap().body;
        assert!(matches!(body[1], Stmt::For { .. }));
        assert!(matches!(body[2], Stmt::While { .. }));
        assert!(matches!(body[3], Stmt::Wait(_)));
        assert!(matches!(body[4], Stmt::Halt(_)));
    }

    #[test]
    fn spawn_statement() {
        let ast = parse(
            r#"
            void worker(int n) { halt; }
            main() { spawn worker(7); }
            "#,
        )
        .unwrap();
        let body = &ast.func("main").unwrap().body;
        let Stmt::Spawn { name, args, .. } = &body[0] else {
            panic!("expected spawn")
        };
        assert_eq!(name, "worker");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn builtins() {
        let ast = parse("main() { poly int x; x = pe_id() + nproc(); }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = &ast.func("main").unwrap().body[1] else {
            panic!()
        };
        let Expr::Bin { l, r, .. } = value.as_ref() else {
            panic!()
        };
        assert!(matches!(l.as_ref(), Expr::PeId(_)));
        assert!(matches!(r.as_ref(), Expr::NProc(_)));
    }

    #[test]
    fn error_on_bad_assignment_target() {
        let e = parse("main() { 1 = 2; }").unwrap_err();
        assert!(e.msg.contains("not assignable"), "{e}");
    }

    #[test]
    fn error_reports_position() {
        let e = parse("main() {\n  poly int x\n}").unwrap_err();
        assert_eq!(e.pos.line, 3, "{e}");
    }

    #[test]
    fn logical_operators_parse() {
        let ast = parse("main() { poly int a, b, c; c = a && b || !a; }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = ast.func("main").unwrap().body.last().unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            value.as_ref(),
            Expr::Bin {
                op: AstBinOp::LogOr,
                ..
            }
        ));
    }

    #[test]
    fn multi_declarator_statement() {
        let ast = parse("main() { poly int a = 1, b = 2; }").unwrap();
        let Stmt::Decls(decls) = &ast.func("main").unwrap().body[0] else {
            panic!()
        };
        assert_eq!(decls.len(), 2);
    }

    #[test]
    fn compound_assignment_targets() {
        let ast = parse("main() { poly int x; x += 3; }").unwrap();
        let Stmt::Expr(Expr::Assign { op, .. }) = &ast.func("main").unwrap().body[1] else {
            panic!()
        };
        assert_eq!(*op, Some(AstBinOp::Add));
    }

    #[test]
    fn dangling_else_binds_inner() {
        let ast = parse("main(){ poly int a; if (a) if (a) a = 1; else a = 2; }").unwrap();
        let Stmt::If { then, els, .. } = &ast.func("main").unwrap().body[1] else {
            panic!()
        };
        assert!(els.is_none());
        let Stmt::If { els: inner_els, .. } = then.as_ref() else {
            panic!()
        };
        assert!(inner_els.is_some());
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn empty_function_body() {
        let ast = parse("main() { }").unwrap();
        assert!(ast.func("main").unwrap().body.is_empty());
    }

    #[test]
    fn empty_statements_allowed() {
        let ast = parse("main() { ;; poly int x; ; x = 1; ; }").unwrap();
        assert!(ast.func("main").unwrap().body.len() >= 4);
    }

    #[test]
    fn void_function_with_explicit_return() {
        let ast = parse("void f() { return; } main() { f(); }").unwrap();
        let f = ast.func("f").unwrap();
        assert_eq!(f.ret, Type::Void);
        assert!(matches!(f.body[0], Stmt::Return(None, _)));
    }

    #[test]
    fn for_with_all_clauses_empty() {
        let ast = parse("main() { poly int x; for (;;) { break; } }").unwrap();
        let Stmt::For {
            init, cond, step, ..
        } = &ast.func("main").unwrap().body[1]
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn nested_parallel_subscripts() {
        // x[[ y[[0]] ]] — the index itself is a remote read.
        let ast = parse("main() { poly int x, y, z; z = x[[y[[0]]]]; }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = ast.func("main").unwrap().body.last().unwrap()
        else {
            panic!()
        };
        let Expr::ParSub { index, .. } = value.as_ref() else {
            panic!("{value:?}")
        };
        assert!(matches!(index.as_ref(), Expr::ParSub { .. }));
    }

    #[test]
    fn deeply_nested_parens() {
        let src = format!(
            "main() {{ poly int x; x = {}1{}; }}",
            "(".repeat(40),
            ")".repeat(40)
        );
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(parse("main() { poly int x; x = ((1); }").is_err());
    }

    #[test]
    fn keywords_cannot_be_identifiers() {
        assert!(parse("main() { poly int while; }").is_err());
        assert!(parse("main() { poly int if; }").is_err());
    }

    #[test]
    fn chained_comparisons_parse_left_assoc() {
        // a < b < c parses as (a < b) < c in C.
        let ast = parse("main() { poly int a, b, c, x; x = a < b < c; }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = ast.func("main").unwrap().body.last().unwrap()
        else {
            panic!()
        };
        let Expr::Bin {
            op: AstBinOp::Lt,
            l,
            ..
        } = value.as_ref()
        else {
            panic!()
        };
        assert!(matches!(
            l.as_ref(),
            Expr::Bin {
                op: AstBinOp::Lt,
                ..
            }
        ));
    }

    #[test]
    fn unary_chains() {
        let ast = parse("main() { poly int x; x = - - ! ~ x; }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = ast.func("main").unwrap().body.last().unwrap()
        else {
            panic!()
        };
        // -( -( !( ~x ) ) )
        let Expr::Un {
            op: AstUnOp::Neg,
            e,
            ..
        } = value.as_ref()
        else {
            panic!()
        };
        let Expr::Un {
            op: AstUnOp::Neg,
            e,
            ..
        } = e.as_ref()
        else {
            panic!()
        };
        let Expr::Un {
            op: AstUnOp::Not,
            e,
            ..
        } = e.as_ref()
        else {
            panic!()
        };
        assert!(matches!(
            e.as_ref(),
            Expr::Un {
                op: AstUnOp::BitNot,
                ..
            }
        ));
    }

    #[test]
    fn function_before_and_after_main() {
        let ast =
            parse("int a() { return 1; } main() { a(); b(); } int b() { return 2; }").unwrap();
        assert_eq!(ast.funcs.len(), 3);
    }

    #[test]
    fn eof_inside_expression_errors_cleanly() {
        assert!(parse("main() { poly int x; x = 1 +").is_err());
        assert!(parse("main() { poly int x; x = ").is_err());
    }
}
