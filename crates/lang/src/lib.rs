//! # msc-lang — the MIMDC front end
//!
//! §4.1 of the paper: "The language accepted by the meta-state converter is
//! a parallel dialect of C called MIMDC. It supports most of the basic C
//! constructs. Data values can be either `int` or `float`, and variables
//! can be declared as `mono` (shared) or `poly` (private)."
//!
//! This crate provides the lexer ([`token`]), recursive-descent parser
//! ([`parser`]), AST ([`ast`]), and the lowering to the MIMD state graph
//! ([`lower`]), which implements the paper's §2.2 function-call handling by
//! inline expansion (recursion included: `return`s become multiway
//! branches over statically-computed return sites) and the §4.2 loop
//! normalization to execute-one-or-more form.
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! let program = msc_lang::compile(r#"
//!     main() {
//!         poly int x;
//!         x = pe_id() * 2;
//!         return(x);
//!     }
//! "#).unwrap();
//! assert!(program.graph.len() >= 1);
//! ```
//!
//! ## MIMDC language summary
//!
//! * Types: `int`, `float` (f64); `void` for function returns.
//! * Storage: `poly` (default, per-PE private) and `mono` (replicated;
//!   stores broadcast to every PE's copy).
//! * Parallel subscripting: `x[[j]]` reads/writes `poly x` on PE `j`
//!   through the router. Compound assignment to a subscript is rejected.
//! * Built-ins: `pe_id()`, `nproc()`.
//! * `wait;` — barrier synchronization of all threads (§2.6).
//! * `spawn f(args);` — restricted dynamic process creation (§3.2.5).
//! * `halt;` — end this process; the PE returns to the free pool.
//! * Control flow: `if`/`else`, `while`, `do`/`while`, `for`, `break`,
//!   `continue`, `return`. Logical `&&`/`||` evaluate both sides (no
//!   short-circuit — on SIMD hardware both sides run under masks anyway).

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

pub use ast::{Ast, Func, Stmt, Type};
pub use lower::{Layout, LowerError, Program, VarRecord};
pub use parser::{parse, ParseError};
pub use token::{lex, LexError};

use std::fmt;

/// Any front-end failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexing or parsing failed.
    Parse(ParseError),
    /// Semantic analysis or lowering failed.
    Lower(LowerError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// Compile MIMDC source to a normalized MIMD state graph + layout.
pub fn compile(src: &str) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    Ok(lower::lower(&ast)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let p = compile("main() { poly int x = 3; return(x); }").unwrap();
        assert_eq!(p.graph.len(), 1);
        assert!(p.layout.main_ret.is_some());
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(matches!(compile("main() {"), Err(CompileError::Parse(_))));
    }

    #[test]
    fn compile_reports_lower_errors() {
        assert!(matches!(
            compile("main() { y = 1; }"),
            Err(CompileError::Lower(_))
        ));
    }
}
