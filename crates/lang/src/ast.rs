//! Abstract syntax for MIMDC (§4.1).

use crate::token::Pos;

/// Value types. MIMDC has `int` and `float` data values; `void` is allowed
/// only as a function return type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer word.
    Int,
    /// Floating point (f64 in this implementation).
    Float,
    /// No value (function returns only).
    Void,
}

/// Storage class (§4.1): `mono` variables are "replicated in each
/// processor's local memory … stores involve a broadcast"; `poly` variables
/// are private per processing element. Default is `poly`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Shared/replicated.
    Mono,
    /// Private.
    Poly,
}

/// A variable declaration (global or local).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Storage class.
    pub storage: Storage,
    /// Value type (never `Void`).
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A named variable.
    Var(String),
    /// Parallel subscript `name[[index]]` — the `poly` slot of `name` on
    /// the PE selected by `index`.
    ParSub {
        /// Variable name (must be `poly`).
        name: String,
        /// PE index expression.
        index: Box<Expr>,
    },
}

/// Binary operators at AST level (lowering maps them onto typed IR ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (evaluated non-short-circuit; see crate docs)
    LogAnd,
    /// `||` (evaluated non-short-circuit)
    LogOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstUnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Floating literal.
    Float(f64, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Assignment; `op` is `Some` for compound assignment (`+=` …).
    Assign {
        /// Target place.
        target: LValue,
        /// Compound operator, if any.
        op: Option<AstBinOp>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: AstUnOp,
        /// Operand.
        e: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Parallel subscript read `x[[j]]`.
    ParSub {
        /// Variable name (must be `poly`).
        name: String,
        /// PE index expression.
        index: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Built-in `pe_id()`.
    PeId(Pos),
    /// Built-in `nproc()`.
    NProc(Pos),
}

impl Expr {
    /// The source position of this expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Float(_, p)
            | Expr::Var(_, p)
            | Expr::PeId(p)
            | Expr::NProc(p) => *p,
            Expr::Assign { pos, .. }
            | Expr::Bin { pos, .. }
            | Expr::Un { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::ParSub { pos, .. } => *pos,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration.
    Decl(VarDecl),
    /// Multiple declarators from one statement (`poly int a, b = 2;`),
    /// declared in the *enclosing* scope (unlike a `Block`, which opens a
    /// new one).
    Decls(Vec<VarDecl>),
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body` — normalized during lowering to the
    /// execute-one-or-more form (§4.2).
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);` — the native loop form.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init expression or declaration.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent ⇒ true).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `return expr?;`.
    Return(Option<Expr>, Pos),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// `wait;` — barrier synchronization of all threads (§2.6).
    Wait(Pos),
    /// `spawn f(args);` — restricted dynamic process creation (§3.2.5).
    Spawn {
        /// Function the new process runs.
        name: String,
        /// Arguments handed to the new process.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `halt;` — this process ends and its PE returns to the free pool.
    Halt(Pos),
    /// `;`
    Empty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters (always `poly`).
    pub params: Vec<(Type, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A whole MIMDC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    /// File-scope variable declarations.
    pub globals: Vec<VarDecl>,
    /// Function definitions (must include `main`).
    pub funcs: Vec<Func>,
}

impl Ast {
    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }
}
