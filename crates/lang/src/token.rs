//! Lexer for MIMDC, the parallel C dialect of §4.1: "It supports most of
//! the basic C constructs. Data values can be either `int` or `float`, and
//! variables can be declared as `mono` (shared) or `poly` (private)."
//!
//! Extensions beyond plain C tokens: the parallel-subscript brackets
//! `[[` / `]]`, and the keywords `mono`, `poly`, `wait`, `spawn`, `halt`,
//! `pe_id`, `nproc`.

use std::fmt;

/// A source position (1-based line and column) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Identifier.
    Ident(String),
    // Keywords.
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `void`
    KwVoid,
    /// `mono`
    KwMono,
    /// `poly`
    KwPoly,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `wait`
    KwWait,
    /// `spawn`
    KwSpawn,
    /// `halt`
    KwHalt,
    // Punctuation / operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[[`
    LLBracket,
    /// `]]`
    RRBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwFloat => write!(f, "float"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwMono => write!(f, "mono"),
            Tok::KwPoly => write!(f, "poly"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwDo => write!(f, "do"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwBreak => write!(f, "break"),
            Tok::KwContinue => write!(f, "continue"),
            Tok::KwWait => write!(f, "wait"),
            Tok::KwSpawn => write!(f, "spawn"),
            Tok::KwHalt => write!(f, "halt"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LLBracket => write!(f, "[["),
            Tok::RRBracket => write!(f, "]]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Assign => write!(f, "="),
            Tok::PlusAssign => write!(f, "+="),
            Tok::MinusAssign => write!(f, "-="),
            Tok::StarAssign => write!(f, "*="),
            Tok::SlashAssign => write!(f, "/="),
            Tok::PercentAssign => write!(f, "%="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Amp => write!(f, "&"),
            Tok::Pipe => write!(f, "|"),
            Tok::Caret => write!(f, "^"),
            Tok::Tilde => write!(f, "~"),
            Tok::Shl => write!(f, "<<"),
            Tok::Shr => write!(f, ">>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize MIMDC source. Supports `//` line and `/* */` block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = pos!();
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            msg: "unterminated block comment".into(),
                            pos: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
        }
        let start = pos!();
        // Numbers.
        if c.is_ascii_digit() || (c == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let begin = i;
            let mut is_float = false;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                bump!();
            }
            if i < bytes.len() && bytes[i] == b'.' {
                is_float = true;
                bump!();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let save = (i, line, col);
                is_float = true;
                bump!();
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    bump!();
                }
                if i < bytes.len() && bytes[i].is_ascii_digit() {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                } else {
                    // Not an exponent after all (e.g. `2e` in `x = 2e;` is
                    // an error in C too, but be graceful: back off).
                    (i, line, col) = save;
                    is_float = bytes[begin..i].contains(&b'.');
                }
            }
            let text = std::str::from_utf8(&bytes[begin..i]).unwrap();
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|e| LexError {
                    msg: format!("bad float literal {text:?}: {e}"),
                    pos: start,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|e| LexError {
                    msg: format!("bad int literal {text:?}: {e}"),
                    pos: start,
                })?)
            };
            out.push(Token { tok, pos: start });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let begin = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            let text = std::str::from_utf8(&bytes[begin..i]).unwrap();
            let tok = match text {
                "int" => Tok::KwInt,
                "float" => Tok::KwFloat,
                "void" => Tok::KwVoid,
                "mono" => Tok::KwMono,
                "poly" => Tok::KwPoly,
                "if" => Tok::KwIf,
                "else" => Tok::KwElse,
                "while" => Tok::KwWhile,
                "do" => Tok::KwDo,
                "for" => Tok::KwFor,
                "return" => Tok::KwReturn,
                "break" => Tok::KwBreak,
                "continue" => Tok::KwContinue,
                "wait" => Tok::KwWait,
                "spawn" => Tok::KwSpawn,
                "halt" => Tok::KwHalt,
                _ => Tok::Ident(text.to_string()),
            };
            out.push(Token { tok, pos: start });
            continue;
        }
        // Operators / punctuation (longest match first).
        let two = if i + 1 < bytes.len() {
            &bytes[i..i + 2]
        } else {
            &bytes[i..i + 1]
        };
        let (tok, len) = match two {
            b"[[" => (Tok::LLBracket, 2),
            b"]]" => (Tok::RRBracket, 2),
            b"==" => (Tok::EqEq, 2),
            b"!=" => (Tok::NotEq, 2),
            b"<=" => (Tok::Le, 2),
            b">=" => (Tok::Ge, 2),
            b"&&" => (Tok::AndAnd, 2),
            b"||" => (Tok::OrOr, 2),
            b"<<" => (Tok::Shl, 2),
            b">>" => (Tok::Shr, 2),
            b"+=" => (Tok::PlusAssign, 2),
            b"-=" => (Tok::MinusAssign, 2),
            b"*=" => (Tok::StarAssign, 2),
            b"/=" => (Tok::SlashAssign, 2),
            b"%=" => (Tok::PercentAssign, 2),
            _ => {
                let t = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b';' => Tok::Semi,
                    b',' => Tok::Comma,
                    b'=' => Tok::Assign,
                    b'+' => Tok::Plus,
                    b'-' => Tok::Minus,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    b'!' => Tok::Bang,
                    b'&' => Tok::Amp,
                    b'|' => Tok::Pipe,
                    b'^' => Tok::Caret,
                    b'~' => Tok::Tilde,
                    b'[' | b']' => {
                        return Err(LexError {
                            msg: format!(
                                "single '{}' — MIMDC only has parallel subscripting '[[ ]]'",
                                c as char
                            ),
                            pos: start,
                        })
                    }
                    other => {
                        return Err(LexError {
                            msg: format!("unexpected character {:?}", other as char),
                            pos: start,
                        })
                    }
                };
                (t, 1)
            }
        };
        for _ in 0..len {
            bump!();
        }
        out.push(Token { tok, pos: start });
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("mono int x poly float wait"),
            vec![
                Tok::KwMono,
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::KwPoly,
                Tok::KwFloat,
                Tok::KwWait,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Float(0.25), Tok::Eof]);
        assert_eq!(toks(".5"), vec![Tok::Float(0.5), Tok::Eof]);
    }

    #[test]
    fn parallel_subscript_brackets() {
        assert_eq!(
            toks("x[[j]]"),
            vec![
                Tok::Ident("x".into()),
                Tok::LLBracket,
                Tok::Ident("j".into()),
                Tok::RRBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn single_bracket_rejected() {
        assert!(lex("x[3]").is_err());
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <= b << c < d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Ident("c".into()),
                Tok::Lt,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("x += 1"),
            vec![
                Tok::Ident("x".into()),
                Tok::PlusAssign,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n b /* multi\nline */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn listing4_lexes() {
        let src = r#"
            main() {
                poly int x;
                if (x) { do { x = 1; } while (x); }
                else { do { x = 2; } while (x); }
                return(x);
            }
        "#;
        let ts = lex(src).unwrap();
        assert!(ts.len() > 30);
        assert_eq!(ts.last().unwrap().tok, Tok::Eof);
    }
}
