//! One-stop pipeline: MIMDC source → MIMD state graph → meta-state
//! automaton → SIMD program → execution.

use msc_codegen::{generate, GenError, GenOptions};
use msc_core::{
    convert_with_stats, ConvertError, ConvertMode, ConvertOptions, ConvertStats, MetaAutomaton,
    TimeSplitOptions,
};
use msc_engine::{Compiled, Engine, EngineError, Job};
use msc_lang::{compile, CompileError, Program};
use msc_simd::{MachineConfig, Metrics, RunError, SimdMachine, SimdProgram};
use std::fmt;

/// Any pipeline-stage failure.
#[derive(Debug)]
pub enum PipelineError {
    /// Front end failed.
    Compile(CompileError),
    /// Meta-state conversion failed.
    Convert(ConvertError),
    /// SIMD code generation failed.
    Gen(GenError),
    /// An engine-level failure (timeout or contained panic) from
    /// [`Pipeline::build_with`].
    Engine(EngineError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile: {e}"),
            PipelineError::Convert(e) => write!(f, "convert: {e}"),
            PipelineError::Gen(e) => write!(f, "codegen: {e}"),
            PipelineError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<ConvertError> for PipelineError {
    fn from(e: ConvertError) -> Self {
        PipelineError::Convert(e)
    }
}

impl From<GenError> for PipelineError {
    fn from(e: GenError) -> Self {
        PipelineError::Gen(e)
    }
}

impl From<EngineError> for PipelineError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Compile(e) => PipelineError::Compile(e),
            EngineError::Convert(e) => PipelineError::Convert(e),
            EngineError::Gen(e) => PipelineError::Gen(e),
            other => PipelineError::Engine(other),
        }
    }
}

/// Builder for the full compilation pipeline.
///
/// ```
/// use metastate::{Pipeline, ConvertMode};
///
/// let built = Pipeline::new("main() { poly int x; x = pe_id(); return(x); }")
///     .mode(ConvertMode::Base)
///     .build()
///     .unwrap();
/// let out = built.run(4).unwrap();
/// assert_eq!(out.machine.poly_at(3, built.ret_addr().unwrap()), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    src: String,
    convert_opts: ConvertOptions,
    gen_opts: GenOptions,
    optimize: bool,
    minimize: bool,
}

impl Pipeline {
    /// Start a pipeline over MIMDC source (base-mode defaults; the
    /// optional IR passes [`optimize`](Self::optimize) and
    /// [`minimize`](Self::minimize) are off, matching the paper's
    /// unoptimized prototype).
    pub fn new(src: impl Into<String>) -> Self {
        Pipeline {
            src: src.into(),
            convert_opts: ConvertOptions::base(),
            gen_opts: GenOptions::default(),
            optimize: false,
            minimize: false,
        }
    }

    /// Peephole-optimize blocks (constant folding, dead stack traffic)
    /// before conversion.
    pub fn optimize(mut self) -> Self {
        self.optimize = true;
        self
    }

    /// Merge bisimilar MIMD states before conversion (undoes the code
    /// duplication of per-call-site inline expansion).
    pub fn minimize(mut self) -> Self {
        self.minimize = true;
        self
    }

    /// Select base (§2.3) or compressed (§2.5, with subsumption)
    /// conversion, resetting conversion options to that mode's defaults.
    pub fn mode(mut self, mode: ConvertMode) -> Self {
        self.convert_opts = match mode {
            ConvertMode::Base => ConvertOptions::base(),
            ConvertMode::Compressed => ConvertOptions::compressed(),
        };
        self
    }

    /// Enable §2.4 time splitting.
    pub fn time_split(mut self, ts: TimeSplitOptions) -> Self {
        self.convert_opts.time_split = Some(ts);
        self
    }

    /// Replace the conversion options wholesale.
    pub fn convert_options(mut self, opts: ConvertOptions) -> Self {
        self.convert_opts = opts;
        self
    }

    /// Cap the meta-state explosion guard (composes with
    /// [`mode`](Self::mode), which resets options to the mode defaults —
    /// apply this after it).
    pub fn max_meta_states(mut self, limit: usize) -> Self {
        self.convert_opts.max_meta_states = limit.max(1);
        self
    }

    /// Set the conversion's resident-memory budget in bytes; past it, cold
    /// interned sets and the worklist tail spill to a temp-file segment
    /// store (`None` = never spill). Composes with [`mode`](Self::mode)
    /// like [`max_meta_states`](Self::max_meta_states).
    pub fn memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.convert_opts.memory_budget = bytes;
        self
    }

    /// Replace the code-generation options (e.g. disable CSI).
    pub fn gen_options(mut self, opts: GenOptions) -> Self {
        self.gen_opts = opts;
        self
    }

    /// Price every stage with one cost model: conversion's time splitting,
    /// CSI scheduling, dispatch accounting, and the embedded simulator
    /// costs (the machine-profile path of `mscc sweep`).
    pub fn costs(mut self, costs: msc_ir::CostModel) -> Self {
        self.convert_opts.costs = costs.clone();
        self.gen_opts.costs = costs;
        self
    }

    /// Run every stage.
    pub fn build(self) -> Result<Built, PipelineError> {
        let mut compiled = compile(&self.src)?;
        if self.optimize {
            compiled.graph.peephole();
            compiled.graph.normalize();
        }
        if self.minimize {
            compiled.graph.minimize();
            compiled.graph.normalize();
        }
        let (automaton, stats) = convert_with_stats(&compiled.graph, &self.convert_opts)?;
        let simd = generate(
            &automaton,
            compiled.layout.poly_words,
            compiled.layout.mono_words,
            &self.gen_opts,
        )?;
        Ok(Built {
            compiled,
            automaton,
            stats,
            simd,
        })
    }

    /// Turn the pipeline into an [`msc_engine::Job`] with the given label,
    /// for submission to an [`Engine`] (parallel conversion, compile
    /// cache, batching).
    pub fn into_job(self, name: impl Into<String>) -> Job {
        Job {
            name: name.into(),
            source: self.src,
            convert: self.convert_opts,
            gen: self.gen_opts,
            optimize: self.optimize,
            minimize: self.minimize,
        }
    }

    /// Run the pipeline through an [`Engine`]: conversion is frontier-
    /// parallel and the result may be served from the engine's cache. The
    /// returned [`Compiled`] carries the artifact plus its provenance
    /// (fresh / memory hit / disk hit). Note the engine canonicalizes the
    /// automaton (deterministic BFS renumbering), so meta-state *numbering*
    /// can differ from [`build`](Self::build) even though the structure is
    /// identical.
    pub fn build_with(
        self,
        engine: &Engine,
        name: impl Into<String>,
    ) -> Result<Compiled, PipelineError> {
        Ok(engine.compile(&self.into_job(name))?)
    }
}

/// The output of every pipeline stage.
#[derive(Debug, Clone)]
pub struct Built {
    /// Front-end output: normalized MIMD state graph + memory layout.
    pub compiled: Program,
    /// The meta-state automaton.
    pub automaton: MetaAutomaton,
    /// Conversion statistics (restarts, splits, subsumptions).
    pub stats: ConvertStats,
    /// The executable SIMD program.
    pub simd: SimdProgram,
}

/// A finished SIMD run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Machine state after the run (memory inspection).
    pub machine: SimdMachine,
    /// Execution metrics.
    pub metrics: Metrics,
}

impl Built {
    /// Execute on `n_pe` PEs, all live (SPMD).
    pub fn run(&self, n_pe: usize) -> Result<RunOutput, RunError> {
        self.run_with(MachineConfig::spmd(n_pe))
    }

    /// Execute under an explicit machine configuration.
    pub fn run_with(&self, config: MachineConfig) -> Result<RunOutput, RunError> {
        let mut machine = SimdMachine::new(&self.simd, &config);
        let metrics = machine.run(&self.simd, &config)?;
        Ok(RunOutput { machine, metrics })
    }

    /// Where `main`'s return value lands (per PE).
    pub fn ret_addr(&self) -> Option<msc_ir::Addr> {
        self.compiled.layout.main_ret
    }

    /// MPL-like rendering of the generated program (Listing 5 style).
    pub fn mpl(&self) -> String {
        msc_codegen::render::render_mpl(&self.simd)
    }

    /// Text rendering of the meta-state automaton.
    pub fn automaton_text(&self) -> String {
        self.automaton.text()
    }
}
