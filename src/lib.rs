//! # metastate — Meta-State Conversion
//!
//! A full reproduction of H. G. Dietz, *Meta-State Conversion* (Purdue
//! TR-EE 93-6, January 1993; ICPP 1993): a compiler pipeline that converts
//! MIMD (SPMD) programs into pure SIMD code by viewing the *set* of
//! per-processor states at an instant as a single aggregate **meta state**
//! and building a finite automaton over those meta states.
//!
//! This crate is the facade: it re-exports every pipeline stage and offers
//! [`Pipeline`], a one-stop builder that runs
//! MIMDC source → MIMD state graph → meta-state automaton → SIMD program.
//!
//! ```
//! use metastate::{Pipeline, ConvertMode};
//!
//! // The paper's Listing 4 (built but not run — half its paths spin
//! // forever by design; see `examples/quickstart.rs` for execution).
//! let src = r#"
//!     main() {
//!         poly int x;
//!         if (x) { do { x = 1; } while (x); }
//!         else   { do { x = 2; } while (x); }
//!         return(x);
//!     }
//! "#;
//! let built = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
//! assert_eq!(built.automaton.len(), 8); // Figure 2: eight meta states
//! assert!(built.mpl().contains("apc = globalor(pc);"));
//! ```

pub use msc_codegen as codegen;
pub use msc_core as core;
pub use msc_csi as csi;
pub use msc_engine as engine;
pub use msc_hash as hash;
pub use msc_ir as ir;
pub use msc_lang as lang;
pub use msc_mimd as mimd;
pub use msc_simd as simd;

pub use msc_codegen::render::render_mpl;
pub use msc_codegen::{generate, GenOptions};
pub use msc_core::{convert, ConvertMode, ConvertOptions, MetaAutomaton, MetaId, TimeSplitOptions};
pub use msc_engine::{
    convert_parallel, Artifact, CacheStats, Compiled, Engine, EngineError, EngineOptions, Job,
    Provenance,
};
pub use msc_ir::{CostModel, MimdGraph};
pub use msc_lang::compile as compile_mimdc;
pub use msc_mimd::{interpret_on_simd, MimdReference};
pub use msc_simd::{MachineProfile, ProfileError, SimdMachine, SimdProgram};

mod pipeline;
pub use pipeline::{Built, Pipeline, PipelineError, RunOutput};
