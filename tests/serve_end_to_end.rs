//! End-to-end pin for the msc-serve daemon: boot it on an ephemeral
//! port, drive every endpoint over real TCP, and check that `/run`
//! produces exactly what the in-process [`metastate::Pipeline`] produces
//! for the same source and PE count — the service layer must be a
//! transport, not a second implementation.
//!
//! Runs as its own test binary (own process), so installing the daemon's
//! process-global obs registry here cannot collide with other tests.

use msc_serve::client::Client;
use msc_serve::{ServeOptions, Server};
use std::time::Duration;

const PROG: &str = r#"
    main() {
        poly int x, acc = 0;
        x = pe_id() % 4;
        while (x > 0) { acc += x; x -= 1; }
        return(acc + 1);
    }
"#;

fn run_body(pes: usize) -> String {
    msc_obs::json::Json::obj(vec![
        ("source", msc_obs::json::Json::from(PROG)),
        ("pes", msc_obs::json::Json::from(pes)),
    ])
    .render()
}

#[test]
fn daemon_run_matches_in_process_pipeline() {
    let handle = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        read_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = handle.local_addr().to_string();

    // Ground truth: the same program through the library pipeline.
    let built = metastate::Pipeline::new(PROG).build().unwrap();
    let pes = 6usize;
    let reference = built.run(pes).unwrap();
    let ret = built.ret_addr().expect("program returns a value");
    let expected: Vec<i64> = (0..pes)
        .map(|pe| reference.machine.poly_at(pe, ret))
        .collect();

    let mut c = Client::connect(&addr).unwrap();

    // /healthz
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health
            .json()
            .unwrap()
            .get("status")
            .and_then(|s| s.as_str()),
        Some("ok")
    );

    // /run agrees with the pipeline, down to the cycle count.
    let resp = c.request("POST", "/run", Some(&run_body(pes))).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = resp.json().unwrap();
    let results: Vec<i64> = v
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results array")
        .iter()
        .map(|x| x.as_i64().unwrap())
        .collect();
    assert_eq!(results, expected, "daemon and pipeline must agree");
    assert_eq!(
        v.get("metrics")
            .and_then(|m| m.get("cycles"))
            .and_then(|c| c.as_u64()),
        Some(reference.metrics.cycles),
        "same program, same machine, same cycle count"
    );

    // /compile of the same source is now a cache hit.
    let body = msc_obs::json::Json::obj(vec![("source", msc_obs::json::Json::from(PROG))]).render();
    let resp = c.request("POST", "/compile", Some(&body)).unwrap();
    assert_eq!(resp.status, 200);
    let prov = resp.json().unwrap();
    assert!(
        matches!(
            prov.get("provenance").and_then(|p| p.as_str()),
            Some("memory") | Some("coalesced")
        ),
        "{}",
        resp.body
    );

    // /batch compiles a mix, isolating the broken job.
    let batch = format!("{{\"jobs\":[{{\"source\":{PROG:?}}},{{\"source\":\"broken(\"}}]}}");
    let resp = c.request("POST", "/batch", Some(&batch)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = resp.json().unwrap();
    assert_eq!(v.get("succeeded").and_then(|s| s.as_u64()), Some(1));

    // /metrics reflects what we just did.
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let counters = metrics.get("counters").expect("counters object");
    assert!(
        counters
            .get("serve.requests")
            .and_then(|x| x.as_u64())
            .unwrap()
            >= 4
    );
    assert_eq!(counters.get("cache.miss").and_then(|x| x.as_u64()), Some(2));

    handle.shutdown();
}

#[test]
fn concurrent_identical_cold_requests_compile_exactly_once() {
    let handle = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_depth: 32,
        read_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = handle.local_addr().to_string();

    const BURST: usize = 8;
    let body = msc_obs::json::Json::obj(vec![("source", msc_obs::json::Json::from(PROG))]).render();
    let provenances: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let (addr, body) = (&addr, &body);
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let r = c.request("POST", "/compile", Some(body)).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                    r.json()
                        .unwrap()
                        .get("provenance")
                        .and_then(|p| p.as_str())
                        .unwrap()
                        .to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Singleflight + cache: exactly one fresh compile, everything else
    // either coalesced onto it or hit the cache it filled.
    let fresh = provenances.iter().filter(|p| *p == "fresh").count();
    assert_eq!(fresh, 1, "exactly one compilation: {provenances:?}");
    assert_eq!(handle.engine().jobs_compiled(), 1);
    let snap = handle.registry().snapshot();
    assert_eq!(snap.counter("cache.miss"), 1);
    assert_eq!(
        snap.counter("cache.hit") + snap.counter("engine.coalesced"),
        (BURST - 1) as u64,
        "{provenances:?}"
    );
    assert_eq!(
        snap.counter("serve.coalesced"),
        snap.counter("engine.coalesced"),
        "the serve layer mirrors the engine's coalescing count"
    );
    handle.shutdown();
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let handle = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        read_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = handle.local_addr().to_string();

    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request("POST", "/run", Some(&run_body(8))).unwrap()
        })
    };
    // Let the request reach a worker, then drain the daemon under it.
    std::thread::sleep(Duration::from_millis(50));
    handle.shutdown();

    let resp = worker.join().expect("in-flight client");
    assert_eq!(
        resp.status, 200,
        "in-flight request must complete through the drain: {}",
        resp.body
    );
    // After the drain the port is closed.
    assert!(
        Client::connect(&addr)
            .and_then(|mut c| c.get("/healthz"))
            .is_err(),
        "daemon must stop accepting after shutdown"
    );
}
