//! End-to-end tests of §3.2.5 restricted dynamic process creation: spawn
//! recruits idle PEs, halt returns them to the pool, overflow is an error.

use metastate::{ConvertMode, Pipeline};
use msc_simd::{MachineConfig, RunError};

#[test]
fn spawned_workers_compute() {
    let src = r#"
        void worker(int seed) {
            poly int r;
            r = seed * seed + 1;
        }
        main() {
            spawn worker(pe_id() + 2);
        }
    "#;
    let built = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    let cfg = MachineConfig::with_pool(8, 3);
    let out = built.run_with(cfg).unwrap();
    let r = built.compiled.layout.var("r").unwrap().addr;
    // Three spawners with seeds 2, 3, 4 → results 5, 10, 17 on recruits.
    let mut results: Vec<i64> = (0..8)
        .map(|pe| out.machine.poly_at(pe, r))
        .filter(|&v| v != 0)
        .collect();
    results.sort_unstable();
    assert_eq!(results, vec![5, 10, 17]);
}

#[test]
fn spawn_overflow_reports_cleanly() {
    let src = r#"
        void worker(int seed) { poly int r; r = seed; }
        main() { spawn worker(1); }
    "#;
    let built = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    // All PEs live ⇒ no idle pool ⇒ the documented §3.2.5 limit.
    let out = built.run_with(MachineConfig::spmd(4));
    assert!(
        matches!(out, Err(RunError::SpawnOverflow { .. })),
        "{out:?}"
    );
}

#[test]
fn halted_pes_return_to_pool_for_later_spawns() {
    // Half the parents spawn, halt, then remaining parents spawn again:
    // the completed workers' PEs must be recyclable.
    let src = r#"
        void quick(int v) {
            poly int r;
            r = v;
        }
        main() {
            poly int me = pe_id();
            if (me == 0) {
                spawn quick(10);
            }
            wait;
            if (me == 1) {
                spawn quick(20);
            }
        }
    "#;
    // Exactly ONE spare PE: the second spawn can only succeed if the first
    // worker's PE was recycled into the pool after `halt`.
    let built = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    let out = built.run_with(MachineConfig::with_pool(3, 2)).unwrap();
    let r = built.compiled.layout.var("r").unwrap().addr;
    // The recycled PE's memory was overwritten by the second spawn's
    // parent-copy, so only the final worker's result is visible.
    assert_eq!(out.machine.poly_at(2, r), 20);
}

#[test]
fn spawn_child_inherits_parent_poly_memory() {
    let src = r#"
        void worker(int unused) {
            poly int out, inherited;
            out = inherited + 5;
        }
        main() {
            poly int inherited_src;
            spawn worker(0);
        }
    "#;
    // `inherited` in the worker reads whatever the recruit's copied memory
    // holds at that slot; seed the parent's slot via the layout.
    let built = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    let cfg = MachineConfig::with_pool(4, 1);
    let mut machine = msc_simd::SimdMachine::new(&built.simd, &cfg);
    let inh = built.compiled.layout.var("inherited").unwrap().addr;
    machine.poly[0][inh.index as usize] = 37;
    machine.run(&built.simd, &cfg).unwrap();
    let outv = built.compiled.layout.var("out").unwrap().addr;
    let results: Vec<i64> = (0..4)
        .map(|pe| machine.poly_at(pe, outv))
        .filter(|&v| v != 0)
        .collect();
    assert_eq!(results, vec![42], "child sees the parent's 37 and adds 5");
}
