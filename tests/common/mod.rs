//! Shared helpers for the integration tests: run one MIMDC program through
//! every execution mode and check they agree.

use metastate::{ConvertMode, Pipeline};
use msc_ir::CostModel;
use msc_mimd::{MimdConfig, MimdReference};

/// Results of one execution mode: the per-PE values of `main`'s return
/// slot (or of a named variable).
pub struct ModeResult {
    /// Per-PE values.
    pub values: Vec<i64>,
    /// Cycles the mode took (read by some, not all, test binaries).
    #[allow(dead_code)]
    pub cycles: u64,
}

/// Run `src` on `n_pe` PEs through the MIMD reference simulator.
pub fn run_reference(src: &str, n_pe: usize) -> ModeResult {
    let p = msc_lang::compile(src).expect("compiles");
    let cfg = MimdConfig::spmd(n_pe);
    let mut m = MimdReference::new(p.layout.poly_words, p.layout.mono_words, &cfg);
    let metrics = m.run(&p.graph, &cfg).expect("reference runs");
    let ret = p.layout.main_ret.expect("main returns a value");
    ModeResult {
        values: (0..n_pe).map(|pe| m.poly_at(pe, ret)).collect(),
        cycles: metrics.cycles,
    }
}

/// Run `src` through meta-state conversion + the SIMD machine.
#[allow(dead_code)] // used by most, not all, test binaries
pub fn run_msc(src: &str, n_pe: usize, mode: ConvertMode) -> ModeResult {
    let built = Pipeline::new(src)
        .mode(mode)
        .build()
        .expect("pipeline builds");
    let out = built.run(n_pe).expect("SIMD run succeeds");
    let ret = built.ret_addr().expect("main returns a value");
    ModeResult {
        values: (0..n_pe).map(|pe| out.machine.poly_at(pe, ret)).collect(),
        cycles: out.metrics.cycles,
    }
}

/// Run `src` through the §1.1 interpreter baseline.
pub fn run_interp(src: &str, n_pe: usize) -> ModeResult {
    let p = msc_lang::compile(src).expect("compiles");
    let (m, metrics) = msc_mimd::interpret_on_simd(
        &p.graph,
        p.layout.poly_words,
        p.layout.mono_words,
        n_pe,
        &CostModel::default(),
    )
    .expect("interpreter runs");
    let ret = p.layout.main_ret.expect("main returns a value");
    ModeResult {
        values: (0..n_pe).map(|pe| m.poly_at(pe, ret)).collect(),
        cycles: metrics.cycles,
    }
}

/// Assert that the MIMD reference, base-mode MSC, compressed-mode MSC, and
/// the interpreter all compute identical per-PE results for `src`.
#[allow(dead_code)] // used by most, not all, test binaries
pub fn assert_all_modes_agree(src: &str, n_pe: usize) {
    let reference = run_reference(src, n_pe);
    let base = run_msc(src, n_pe, ConvertMode::Base);
    let compressed = run_msc(src, n_pe, ConvertMode::Compressed);
    let interp = run_interp(src, n_pe);
    assert_eq!(base.values, reference.values, "base MSC != MIMD reference");
    assert_eq!(
        compressed.values, reference.values,
        "compressed MSC != MIMD reference"
    );
    assert_eq!(
        interp.values, reference.values,
        "interpreter != MIMD reference"
    );
}
