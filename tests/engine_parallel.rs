//! Engine-level properties:
//!
//! * **Parallel ≡ sequential**: over randomly generated MIMD graphs, the
//!   frontier-parallel converter produces the *bit-identical* automaton at
//!   every thread count, and that automaton is the sequential core
//!   converter's output after canonical BFS renumbering.
//! * **Cache hits skip conversion**: a repeated job is served from the
//!   cache without recompiling, and the artifact is shared.

use metastate::{convert_parallel, Engine, EngineOptions, Job, Pipeline, Provenance};
use msc_core::{convert_with_stats, ConvertMode, ConvertOptions};
use msc_ir::{MimdGraph, MimdState, StateId, Terminator};
use proptest::prelude::*;

/// Blueprint of one MIMD state: terminator kind + raw target indices
/// (taken modulo the state count when the graph is built) + barrier flag.
#[derive(Debug, Clone)]
struct StateSpec {
    kind: u8,
    a: usize,
    b: usize,
    extra: Vec<usize>,
    barrier: bool,
}

fn arb_graph() -> impl Strategy<Value = MimdGraph> {
    let spec = (
        0u8..4,
        0usize..32,
        0usize..32,
        prop::collection::vec(0usize..32, 0..4),
        any::<bool>(),
    )
        .prop_map(|(kind, a, b, extra, barrier)| StateSpec {
            kind,
            a,
            b,
            extra,
            barrier,
        });
    (prop::collection::vec(spec, 2..14), 0usize..32).prop_map(|(specs, start)| {
        let n = specs.len();
        let mut g = MimdGraph::new();
        for spec in &specs {
            let term = match spec.kind {
                0 => Terminator::Halt,
                1 => Terminator::Jump(StateId((spec.a % n) as u32)),
                2 => Terminator::Branch {
                    t: StateId((spec.a % n) as u32),
                    f: StateId((spec.b % n) as u32),
                },
                _ => {
                    let mut targets = vec![StateId((spec.a % n) as u32)];
                    targets.extend(spec.extra.iter().map(|&i| StateId((i % n) as u32)));
                    Terminator::Multi(targets)
                }
            };
            let mut st = MimdState::new(vec![], term);
            st.barrier = spec.barrier;
            g.add(st);
        }
        g.start = StateId((start % n) as u32);
        g
    })
}

fn check_graph(
    g: &MimdGraph,
    opts: &ConvertOptions,
    check_stats: bool,
) -> Result<(), TestCaseError> {
    // Guard-limited graphs are fine as long as every path agrees on the
    // error; skip those cases (they are exercised by unit tests).
    let (seq, seq_stats) = match convert_parallel(g, opts, 1) {
        Ok(r) => r,
        Err(_) => return Ok(()),
    };
    prop_assert!(
        seq.validate().is_ok(),
        "sequential output invalid: {:?}",
        seq.validate()
    );
    for threads in [2usize, 4, 8] {
        let (par, par_stats) = convert_parallel(g, opts, threads).map_err(|e| {
            TestCaseError::fail(format!("parallel failed where sequential ok: {e}"))
        })?;
        prop_assert_eq!(&par.sets, &seq.sets, "sets differ at {} threads", threads);
        prop_assert_eq!(
            &par.succs,
            &seq.succs,
            "succs differ at {} threads",
            threads
        );
        prop_assert_eq!(par.start, seq.start);
        if check_stats {
            // With barriers ignored there is no latent widening, so each
            // meta state is expanded exactly once on every path and the
            // enumeration counter is thread-count invariant.
            prop_assert_eq!(
                par_stats.successor_sets_enumerated,
                seq_stats.successor_sets_enumerated,
                "enumeration count differs at {} threads",
                threads
            );
        }
    }
    // Without subsumption the engine's normal form is exactly the core
    // converter's automaton pruned of unreachable states (latent widening
    // can orphan earlier-interned sets in the core converter too) and
    // canonicalized.
    if !opts.subsumption {
        let (mut core, core_stats) = convert_with_stats(g, opts)
            .map_err(|e| TestCaseError::fail(format!("core failed where engine ok: {e}")))?;
        core.prune_unreachable();
        core.canonicalize();
        prop_assert_eq!(
            &seq.sets,
            &core.sets,
            "engine normal form is not canonicalized core"
        );
        prop_assert_eq!(&seq.succs, &core.succs);
        if check_stats {
            prop_assert_eq!(
                core_stats.successor_sets_enumerated,
                seq_stats.successor_sets_enumerated,
                "engine enumeration count differs from sequential core"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn parallel_equals_sequential_base(g in arb_graph()) {
        let opts = ConvertOptions { max_meta_states: 4096, max_successor_sets: 1 << 12, ..ConvertOptions::base() };
        check_graph(&g, &opts, false)?;
    }

    #[test]
    fn parallel_equals_sequential_compressed(g in arb_graph()) {
        let opts = ConvertOptions { max_meta_states: 4096, ..ConvertOptions::compressed() };
        check_graph(&g, &opts, false)?;
    }

    #[test]
    fn parallel_equals_sequential_no_barriers(g in arb_graph()) {
        let opts = ConvertOptions {
            respect_barriers: false,
            max_meta_states: 4096,
            max_successor_sets: 1 << 12,
            ..ConvertOptions::base()
        };
        check_graph(&g, &opts, true)?;
    }
}

const PROG: &str = "main() { poly int x; x = pe_id() * 3 + 1; return(x); }";

#[test]
fn cache_hit_skips_conversion() {
    let engine = Engine::new(EngineOptions::default());
    let job = Job::new("prog", PROG);
    let first = engine.compile(&job).unwrap();
    assert_eq!(first.provenance, Provenance::Fresh);
    assert_eq!(engine.jobs_compiled(), 1);
    let second = engine.compile(&job).unwrap();
    assert_eq!(
        second.provenance,
        Provenance::Memory,
        "repeat is served from cache"
    );
    assert_eq!(engine.jobs_compiled(), 1, "conversion was skipped");
    assert!(
        std::sync::Arc::ptr_eq(&first.artifact, &second.artifact),
        "both calls share one artifact"
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn disk_cache_survives_engine_restart() {
    let dir = std::env::temp_dir().join(format!("msc-engine-disk-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    };
    let first = Engine::new(opts.clone())
        .compile(&Job::new("p", PROG))
        .unwrap();
    // A fresh engine simulates a new `mscc` process: only the disk layer
    // can satisfy the lookup.
    let engine = Engine::new(opts);
    let second = engine.compile(&Job::new("p", PROG)).unwrap();
    assert_eq!(second.provenance, Provenance::Disk);
    assert_eq!(engine.jobs_compiled(), 0, "nothing was recompiled");
    assert_eq!(second.artifact.meta_states, first.artifact.meta_states);
    assert_eq!(
        second.artifact.automaton_text,
        first.artifact.automaton_text
    );
    // The reloaded program still runs: execute it and check per-PE results.
    let built = Pipeline::new(PROG).build().unwrap();
    let out = built.run(4).unwrap();
    let machine =
        msc_simd::SimdMachine::new(&second.artifact.simd, &msc_simd::MachineConfig::spmd(4));
    let mut machine = machine;
    machine
        .run(&second.artifact.simd, &msc_simd::MachineConfig::spmd(4))
        .unwrap();
    let ret = second.artifact.ret_addr.unwrap();
    for pe in 0..4 {
        assert_eq!(
            machine.poly_at(pe, ret),
            out.machine.poly_at(pe, built.ret_addr().unwrap())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_build_with_routes_through_engine() {
    let engine = Engine::new(EngineOptions::default());
    let built = Pipeline::new(PROG).build().unwrap();
    let compiled = Pipeline::new(PROG)
        .mode(ConvertMode::Base)
        .build_with(&engine, "prog")
        .unwrap();
    assert_eq!(compiled.provenance, Provenance::Fresh);
    // Same structure as the classic pipeline (numbering may differ only by
    // canonicalization; this program is straight-line so even the text
    // agrees).
    assert_eq!(compiled.artifact.automaton_text, built.automaton_text());
}
