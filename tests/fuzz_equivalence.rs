//! Property-based cross-mode equivalence: *generated* MIMDC programs
//! (terminating by construction) must compute identical per-PE results
//! under the true-MIMD reference, base-mode MSC, compressed-mode MSC,
//! time-split MSC, and the interpreter baseline.
//!
//! This is the strongest correctness statement in the suite: the paper's
//! §1.2 promise — the meta-state automaton duplicates MIMD execution — is
//! checked over an open-ended family of programs rather than hand-picked
//! cases.

mod common;

use metastate::{ConvertMode, Pipeline, TimeSplitOptions};
use proptest::prelude::*;

/// A tiny AST for generated programs. Loops are bounded by construction
/// (fixed trip counts), so every generated program terminates.
#[derive(Debug, Clone)]
enum GExpr {
    Lit(i64),
    Var(usize),
    PeId,
    Bin(&'static str, Box<GExpr>, Box<GExpr>),
}

#[derive(Debug, Clone)]
enum GStmt {
    Assign(usize, GExpr),
    CompoundAdd(usize, GExpr),
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    /// `for (tmp = 0; tmp < k; tmp += 1) body` with small constant k.
    Loop(u8, Vec<GStmt>),
    Wait,
}

const N_VARS: usize = 4;

fn arb_expr(depth: u32) -> BoxedStrategy<GExpr> {
    let leaf = prop_oneof![
        (-8i64..16).prop_map(GExpr::Lit),
        (0..N_VARS).prop_map(GExpr::Var),
        Just(GExpr::PeId),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("/"),
                Just("%"),
                Just("<"),
                Just("=="),
                Just("&"),
                Just("^"),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| GExpr::Bin(op, Box::new(l), Box::new(r)))
    })
    .boxed()
}

fn arb_stmts(depth: u32) -> BoxedStrategy<Vec<GStmt>> {
    let stmt = {
        let leaf = prop_oneof![
            ((0..N_VARS), arb_expr(2)).prop_map(|(v, e)| GStmt::Assign(v, e)),
            ((0..N_VARS), arb_expr(1)).prop_map(|(v, e)| GStmt::CompoundAdd(v, e)),
            Just(GStmt::Wait),
        ];
        leaf.prop_recursive(depth, 12, 3, |inner| {
            let block = prop::collection::vec(inner, 1..3);
            prop_oneof![
                (arb_expr(1), block.clone(), block.clone())
                    .prop_map(|(c, t, e)| GStmt::If(c, t, e)),
                ((1u8..4), block).prop_map(|(k, b)| GStmt::Loop(k, b)),
            ]
        })
        .boxed()
    };
    prop::collection::vec(stmt, 1..4).boxed()
}

fn render_expr(e: &GExpr, out: &mut String) {
    match e {
        GExpr::Lit(v) => out.push_str(&format!("({v})")),
        GExpr::Var(v) => out.push_str(&format!("v{v}")),
        GExpr::PeId => out.push_str("pe_id()"),
        GExpr::Bin(op, l, r) => {
            out.push('(');
            render_expr(l, out);
            out.push_str(&format!(" {op} "));
            render_expr(r, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[GStmt], indent: usize, loop_depth: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            GStmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            GStmt::CompoundAdd(v, e) => {
                out.push_str(&format!("{pad}v{v} += "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            GStmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if ("));
                render_expr(c, out);
                out.push_str(") {\n");
                render_stmts(t, indent + 1, loop_depth, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, indent + 1, loop_depth, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GStmt::Loop(k, b) => {
                let i = format!("t{loop_depth}");
                out.push_str(&format!("{pad}for ({i} = 0; {i} < {k}; {i} += 1) {{\n"));
                render_stmts(b, indent + 1, loop_depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GStmt::Wait => {
                // `wait` inside divergent control flow can deadlock real
                // MIMD programs; only emit it at top level (indent 1).
                if indent == 1 {
                    out.push_str(&format!("{pad}wait;\n"));
                }
            }
        }
    }
}

fn max_loop_depth(stmts: &[GStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            GStmt::Loop(_, b) => 1 + max_loop_depth(b),
            GStmt::If(_, t, e) => max_loop_depth(t).max(max_loop_depth(e)),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

fn render_program(stmts: &[GStmt]) -> String {
    let mut body = String::new();
    render_stmts(stmts, 1, 0, &mut body);
    let loops = max_loop_depth(stmts);
    let mut decls = String::from("    poly int ");
    for v in 0..N_VARS {
        decls.push_str(&format!("v{v} = {}, ", v as i64 + 1));
    }
    for t in 0..loops.max(1) {
        decls.push_str(&format!("t{t} = 0, "));
    }
    decls.push_str("result = 0;\n");
    format!(
        "main() {{\n{decls}{body}    result = v0 + v1 * 10 + v2 * 100 + v3 * 1000;\n    return(result);\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All execution modes agree on generated programs.
    #[test]
    fn generated_programs_agree_across_modes(stmts in arb_stmts(2)) {
        let src = render_program(&stmts);
        let n_pe = 5;
        let reference = common::run_reference(&src, n_pe);
        for mode in [ConvertMode::Base, ConvertMode::Compressed] {
            // Bound the subset construction: programs whose base automaton
            // would explode are skipped for that mode (the explosion guard
            // is itself under test elsewhere).
            let mut copts = match mode {
                ConvertMode::Base => msc_core::ConvertOptions::base(),
                ConvertMode::Compressed => msc_core::ConvertOptions::compressed(),
            };
            copts.max_meta_states = 3000;
            let built = match Pipeline::new(src.as_str()).convert_options(copts).build() {
                Ok(b) => b,
                Err(metastate::PipelineError::Convert(
                    msc_core::ConvertError::TooManyMetaStates { .. },
                )) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("{e} on:\n{src}"))),
            };
            let out = built.run(n_pe).expect("run");
            let ret = built.ret_addr().unwrap();
            let values: Vec<i64> = (0..n_pe).map(|pe| out.machine.poly_at(pe, ret)).collect();
            prop_assert_eq!(
                &values, &reference.values,
                "{:?} diverged from MIMD reference on:\n{}", mode, src
            );
        }
        let interp = common::run_interp(&src, n_pe);
        prop_assert_eq!(&interp.values, &reference.values, "interpreter diverged on:\n{}", src);
    }

    /// Time splitting never changes results, only the schedule.
    #[test]
    fn time_split_preserves_semantics(stmts in arb_stmts(2)) {
        let src = render_program(&stmts);
        let n_pe = 4;
        let reference = common::run_reference(&src, n_pe);
        let mut copts = msc_core::ConvertOptions::base();
        copts.max_meta_states = 3000;
        copts.time_split = Some(TimeSplitOptions::default());
        let built = match Pipeline::new(src.as_str()).convert_options(copts).build() {
            Ok(b) => b,
            Err(metastate::PipelineError::Convert(
                msc_core::ConvertError::TooManyMetaStates { .. },
            )) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e} on:\n{src}"))),
        };
        let out = built.run(n_pe).expect("run");
        let ret = built.ret_addr().unwrap();
        let values: Vec<i64> = (0..n_pe).map(|pe| out.machine.poly_at(pe, ret)).collect();
        prop_assert_eq!(values, reference.values, "time-split diverged on:\n{}", src);
    }

    /// Disabling CSI never changes results, only the issue count.
    #[test]
    fn csi_off_preserves_semantics(stmts in arb_stmts(2)) {
        let src = render_program(&stmts);
        let n_pe = 4;
        let reference = common::run_reference(&src, n_pe);
        let mut copts = msc_core::ConvertOptions::base();
        copts.max_meta_states = 3000;
        let built = match Pipeline::new(src.as_str())
            .convert_options(copts)
            .gen_options(msc_codegen::GenOptions { csi: false, ..Default::default() })
            .build()
        {
            Ok(b) => b,
            Err(metastate::PipelineError::Convert(
                msc_core::ConvertError::TooManyMetaStates { .. },
            )) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e} on:\n{src}"))),
        };
        let out = built.run(n_pe).expect("run");
        let ret = built.ret_addr().unwrap();
        let values: Vec<i64> = (0..n_pe).map(|pe| out.machine.poly_at(pe, ret)).collect();
        prop_assert_eq!(values, reference.values, "no-CSI diverged on:\n{}", src);
    }
}
