//! Property-based cross-mode equivalence: *generated* MIMDC programs
//! (terminating by construction) must compute identical per-PE results
//! under the true-MIMD reference, base-mode MSC, compressed-mode MSC,
//! time-split MSC, and the interpreter baseline.
//!
//! This is the strongest correctness statement in the suite: the paper's
//! §1.2 promise — the meta-state automaton duplicates MIMD execution — is
//! checked over an open-ended family of programs rather than hand-picked
//! cases.
//!
//! The generator itself lives in `msc-fuzz` (one source of truth shared
//! with `mscc fuzz` and the CI smoke stage); proptest supplies the seeds,
//! the fuzzer's oracle matrix does the diffing. Oracles that hit the
//! meta-state explosion guard are *skipped* by `run_case`, mirroring the
//! old in-file behavior.

use msc_fuzz::{generate_case, run_case, FuzzConfig, Oracle, OracleConfig};
use proptest::prelude::*;

fn case_for(seed: u64) -> msc_fuzz::Program {
    let cfg = FuzzConfig {
        seed,
        // Match the historical suite: no spawn trees in this file (the
        // spawn matrix is covered by msc-fuzz's own tests and the CI
        // smoke stage).
        spawn_permille: 0,
        ..FuzzConfig::default()
    };
    generate_case(&cfg, 0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All execution modes agree on generated programs.
    #[test]
    fn generated_programs_agree_across_modes(seed in any::<u64>()) {
        let prog = case_for(seed);
        let result = run_case(
            &prog,
            &[Oracle::Interp, Oracle::Base, Oracle::Compressed],
            &OracleConfig { n_pe: 5, ..OracleConfig::default() },
        );
        prop_assert!(
            result.clean(),
            "mismatches {:?} on:\n{}",
            result.mismatches,
            result.source
        );
    }

    /// Time splitting never changes results, only the schedule.
    #[test]
    fn time_split_preserves_semantics(seed in any::<u64>()) {
        let prog = case_for(seed);
        let result = run_case(
            &prog,
            &[Oracle::TimeSplit],
            &OracleConfig { n_pe: 4, ..OracleConfig::default() },
        );
        prop_assert!(
            result.clean(),
            "time-split diverged: {:?} on:\n{}",
            result.mismatches,
            result.source
        );
    }

    /// Disabling CSI never changes results, only the issue count.
    #[test]
    fn csi_off_preserves_semantics(seed in any::<u64>()) {
        let prog = case_for(seed);
        let result = run_case(
            &prog,
            &[Oracle::NoCsi],
            &OracleConfig { n_pe: 4, ..OracleConfig::default() },
        );
        prop_assert!(
            result.clean(),
            "no-CSI diverged: {:?} on:\n{}",
            result.mismatches,
            result.source
        );
    }
}
