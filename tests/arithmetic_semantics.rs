//! Arithmetic edge-case semantics, pinned across every execution mode:
//! the simulated machine's defined behaviours (div/rem by zero → 0,
//! wrapping shifts, float→int truncation, non-short-circuit logicals)
//! must be identical in the MIMD reference, both MSC modes, and the
//! interpreter — otherwise "duplicating MIMD execution" (§1) would only
//! hold for well-behaved programs.

mod common;
use common::{assert_all_modes_agree, run_reference};

#[test]
fn division_and_remainder_by_zero_trap_to_zero() {
    let src = r#"
        main() {
            poly int a, b;
            a = 7 / (pe_id() - 2);   /* PE 2 divides by zero */
            b = 7 % (pe_id() - 2);
            return(a * 100 + b);
        }
    "#;
    assert_all_modes_agree(src, 5);
    let vals = run_reference(src, 5).values;
    assert_eq!(vals[2], 0, "div-by-zero and rem-by-zero both yield 0");
}

#[test]
fn negative_division_truncates_toward_zero() {
    let src = r#"
        main() {
            poly int q, r;
            q = (0 - 7) / 2;
            r = (0 - 7) % 2;
            return(q * 100 + r);
        }
    "#;
    assert_all_modes_agree(src, 2);
    let vals = run_reference(src, 2).values;
    // -7/2 = -3 (truncation), -7%2 = -1 (C semantics).
    assert_eq!(vals[0], -3 * 100 + -1);
}

#[test]
fn shift_amounts_wrap_mod_64() {
    let src = r#"
        main() {
            poly int x;
            x = 1 << (64 + pe_id());   /* wraps: 1 << pe_id() */
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 4);
    let vals = run_reference(src, 4).values;
    assert_eq!(vals, vec![1, 2, 4, 8]);
}

#[test]
fn float_to_int_truncates() {
    let src = r#"
        main() {
            poly int x;
            poly float f;
            f = 2.9;
            x = f;            /* assignment converts: trunc(2.9) = 2 */
            x = x * 10;
            f = 0.0 - 3.7;
            x = x + f;        /* x + (-3.7): promoted to float, then trunc */
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 2);
    let vals = run_reference(src, 2).values;
    // x = 2*10 = 20; 20 + (-3.7) = 16.3 → stored back into int x = 16.
    assert_eq!(vals[0], 16);
}

#[test]
fn float_comparisons_drive_control_flow() {
    let src = r#"
        main() {
            poly float f;
            poly int x;
            f = pe_id() * 0.5;
            if (f >= 1.0) { x = 1; } else { x = 0; }
            while (f < 3.0) { f = f + 1.0; x += 10; }
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 6);
    let vals = run_reference(src, 6).values;
    // pe 0: f=0.0, x=0, loop 3 times → 30; pe 2: f=1.0 → 1 + 20 = 21.
    assert_eq!(vals[0], 30);
    assert_eq!(vals[2], 21);
}

#[test]
fn logical_operators_do_not_short_circuit_but_match() {
    // Both sides always evaluate (documented divergence from C), but since
    // all our backends share that semantics, results agree; also the
    // *values* are C-correct for side-effect-free operands.
    let src = r#"
        main() {
            poly int a, b, x;
            a = pe_id() % 2;
            b = 2 - pe_id() % 3;
            x = (a && b) + (a || b) * 10 + (!a) * 100 + (!!b) * 1000;
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 6);
}

#[test]
fn bitwise_on_negative_numbers() {
    let src = r#"
        main() {
            poly int x;
            x = (~pe_id()) & 255;
            x = x ^ (0 - 1);
            x = x | (1 << 62);
            return(x >> 1);
        }
    "#;
    assert_all_modes_agree(src, 4);
}

#[test]
fn mixed_precedence_expression_torture() {
    let src = r#"
        main() {
            poly int x;
            x = 1 + 2 * 3 - 4 / 2 % 3 << 1 & 15 | 3 ^ 9;
            x = x * (pe_id() + 1) == 0 != 1 < 2 <= 3 > 0 >= 0;
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 3);
}

#[test]
fn deeply_nested_expressions() {
    let src = r#"
        main() {
            poly int x;
            x = ((((((pe_id() + 1) * 2) + 3) * 4) + 5) * 6) + 7;
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 4);
    let vals = run_reference(src, 4).values;
    let f = |p: i64| ((((((p + 1) * 2) + 3) * 4) + 5) * 6) + 7;
    assert_eq!(vals, (0..4).map(f).collect::<Vec<_>>());
}

#[test]
fn assignment_is_an_expression() {
    let src = r#"
        main() {
            poly int a, b, c;
            a = b = c = pe_id() + 1;
            a += b = 10;
            return(a * 100 + b * 10 + c);
        }
    "#;
    assert_all_modes_agree(src, 3);
    let vals = run_reference(src, 3).values;
    // a = pe+1 then a += 10 → pe+11; b = 10; c = pe+1.
    let f = |p: i64| (p + 11) * 100 + 10 * 10 + (p + 1);
    assert_eq!(vals, (0..3).map(f).collect::<Vec<_>>());
}
