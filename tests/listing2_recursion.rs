//! The paper's Listing 2 (§2.2): a `main` that invokes a recursive
//! function `g` from two positions, with `g` calling itself once.
//!
//! "When in-line expanding the call to g from position a, we know that any
//! return statements within g must return to either position b or e, and
//! can replace the return statements with the appropriate multiway branch.
//! Likewise, when in-line expanding g called from position c, return
//! statements are translated into multiway branches targeting d or e."
//!
//! These tests pin that exact structure: two copies of `g` (one per
//! top-level call site), each with a 2-way return branch (external site +
//! internal recursive site), and correct end-to-end execution.

mod common;

use metastate::{ConvertMode, Pipeline};
use msc_ir::Terminator;

/// Listing 2's shape with concrete bodies: g recurses on n, decrementing;
/// called from two positions in main.
const LISTING2: &str = r#"
    int g(int n) {
        /* position e is after this recursive call */
        if (n > 0) {
            return g(n - 1) + 1;
        }
        return 100;
    }
    main() {
        poly int r1, r2;
        /* position a: first call; position b follows it */
        r1 = g(pe_id() % 3);
        /* position c: second call; position d follows it */
        r2 = g(pe_id() % 2 + 1);
        return(r1 * 1000 + r2);
    }
"#;

#[test]
fn two_call_sites_two_copies_each_with_two_return_targets() {
    let p = msc_lang::compile(LISTING2).unwrap();
    // Each copy of g has exactly one multiway return branch with exactly
    // two targets: {external continuation, internal recursive site}.
    let multis: Vec<Vec<msc_ir::StateId>> = p
        .graph
        .ids()
        .filter_map(|i| match &p.graph.state(i).term {
            Terminator::Multi(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    // g has two `return` statements, so each inline copy carries two
    // multiway branches — 4 in all, every one 2-way.
    assert_eq!(multis.len(), 4, "two returns × two copies of g");
    for targets in &multis {
        assert_eq!(targets.len(), 2, "paper: return to either b or e (d or e)");
    }
    // Exactly two distinct target sets — one per copy — returning to
    // different external sites.
    let mut distinct: Vec<Vec<msc_ir::StateId>> = multis.clone();
    distinct.sort();
    distinct.dedup();
    assert_eq!(distinct.len(), 2, "one return-target set per copy");
    assert_ne!(distinct[0][0], distinct[1][0]);
}

#[test]
fn listing2_executes_correctly_in_every_mode() {
    common::assert_all_modes_agree(LISTING2, 6);
    // And against host ground truth.
    fn g(n: i64) -> i64 {
        if n > 0 {
            g(n - 1) + 1
        } else {
            100
        }
    }
    let got = common::run_reference(LISTING2, 6).values;
    let want: Vec<i64> = (0..6i64)
        .map(|pe| g(pe % 3) * 1000 + g(pe % 2 + 1))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn meta_conversion_handles_the_recursive_automaton() {
    let built = Pipeline::new(LISTING2)
        .mode(ConvertMode::Compressed)
        .build()
        .unwrap();
    assert!(built.automaton.len() >= 2);
    built.automaton.validate().unwrap();
    // The generated program contains RetMulti dispatch instructions.
    let has_retmulti = built
        .simd
        .blocks
        .iter()
        .flat_map(|b| &b.body)
        .any(|gi| matches!(gi.instr, msc_simd::SimdInstr::RetMulti(_)));
    assert!(has_retmulti, "§2.2 machinery must survive to SIMD code");
}

/// Deeper mutual recursion through the same machinery.
#[test]
fn mutual_recursion_with_accumulation() {
    let src = r#"
        int ping(int n, int acc) {
            if (n == 0) return acc;
            return pong(n - 1, acc + 1);
        }
        int pong(int n, int acc) {
            if (n == 0) return acc;
            return ping(n - 1, acc + 10);
        }
        main() {
            poly int x;
            x = ping(pe_id() % 5, 0);
            return(x);
        }
    "#;
    common::assert_all_modes_agree(src, 10);
    fn ping(n: i64, acc: i64) -> i64 {
        if n == 0 {
            acc
        } else {
            pong(n - 1, acc + 1)
        }
    }
    fn pong(n: i64, acc: i64) -> i64 {
        if n == 0 {
            acc
        } else {
            ping(n - 1, acc + 10)
        }
    }
    let got = common::run_reference(src, 10).values;
    let want: Vec<i64> = (0..10i64).map(|pe| ping(pe % 5, 0)).collect();
    assert_eq!(got, want);
}

/// Recursion nested under divergent control flow: different PEs recurse to
/// different depths simultaneously, all under one SIMD program counter.
#[test]
fn divergent_recursion_depths() {
    let src = r#"
        int depth_sum(int n) {
            if (n <= 0) return 0;
            return n + depth_sum(n - 1);
        }
        main() {
            poly int x;
            if (pe_id() % 2) { x = depth_sum(pe_id()); }
            else             { x = depth_sum(pe_id() / 2); }
            return(x);
        }
    "#;
    common::assert_all_modes_agree(src, 8);
    let tri = |n: i64| n * (n + 1) / 2;
    let got = common::run_reference(src, 8).values;
    let want: Vec<i64> = (0..8i64)
        .map(|pe| if pe % 2 == 1 { tri(pe) } else { tri(pe / 2) })
        .collect();
    assert_eq!(got, want);
}
