//! Acceptance pins for the differential-fuzzing subsystem (ISSUE 5):
//!
//! * an intentionally injected conversion bug is *caught* by the fuzzer
//!   and *minimized* to a reproducer of at most 15 source lines;
//! * the minimizer's output still reproduces the original mismatch;
//! * a clean run over the full in-process oracle matrix finds nothing.

use msc_fuzz::{
    minimize, replay, run_case, run_fuzz, FuzzConfig, Oracle, OracleConfig, Reproducer,
};
use std::path::Path;

fn corpus_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("msc-fuzz-harness-{tag}-{}", std::process::id()))
}

/// The injected-bug fixture: the `selftest` oracle miscompiles (nudges the
/// last PE's result) on any program whose automaton branched and whose
/// source contains an `if`. The fuzzer must catch it within a modest case
/// budget and shrink the trigger to a near-minimal branch.
#[test]
fn injected_bug_is_caught_and_minimized_to_a_tiny_reproducer() {
    let dir = corpus_dir("inject");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FuzzConfig {
        seed: 1,
        cases: 30,
        oracles: vec![Oracle::SelfTest],
        corpus_dir: Some(dir.clone()),
        spawn_permille: 0,
        ..FuzzConfig::default()
    };
    let summary = run_fuzz(&cfg);
    assert!(
        summary.mismatches > 0,
        "the injected bug went unnoticed over {} cases",
        summary.cases
    );
    assert!(!summary.reproducers.is_empty());
    for path in &summary.reproducers {
        let repro = Reproducer::read(Path::new(path)).expect("readable reproducer");
        assert!(
            repro.minimized_lines <= 15,
            "reproducer not minimal ({} lines):\n{}",
            repro.minimized_lines,
            repro.minimized_source
        );
        assert_ne!(repro.expected, repro.actual, "reproducer records no diff");
        // The minimized source must keep the bug's trigger.
        assert!(
            repro.minimized_source.contains("if ("),
            "{}",
            repro.minimized_source
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The minimizer's output still reproduces the original mismatch: replay
/// the corpus entry, then re-check the *minimized* program directly
/// against the same oracle.
#[test]
fn minimized_program_still_reproduces_the_mismatch() {
    let dir = corpus_dir("replay");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FuzzConfig {
        seed: 7,
        cases: 30,
        oracles: vec![Oracle::SelfTest],
        corpus_dir: Some(dir.clone()),
        spawn_permille: 0,
        ..FuzzConfig::default()
    };
    let summary = run_fuzz(&cfg);
    assert!(summary.mismatches > 0, "no mismatch to replay");
    let repro = Reproducer::read(Path::new(&summary.reproducers[0])).unwrap();
    // Replay regenerates the original (unminimized) program from
    // (seed, case) and must still diverge under the same oracle.
    let replayed = replay(&repro, &cfg);
    assert!(
        replayed.mismatches.iter().any(|m| m.oracle == repro.oracle),
        "replay of case {} lost the mismatch: {:?}",
        repro.case_index,
        replayed.mismatches
    );
    assert_eq!(
        replayed.source, repro.source,
        "replay drifted from the corpus"
    );
    // And an explicit minimization pass over the regenerated program
    // converges to a program that still fails the oracle.
    let prog = msc_fuzz::generate_case(
        &FuzzConfig {
            seed: repro.seed,
            ..cfg.clone()
        },
        repro.case_index,
    );
    let ocfg = OracleConfig::default();
    let still_fails = |p: &msc_fuzz::Program| {
        run_case(p, &[Oracle::SelfTest], &ocfg)
            .mismatches
            .iter()
            .any(|m| m.oracle == "selftest")
    };
    assert!(still_fails(&prog), "fixture lost its failure");
    let min = minimize(&prog, still_fails, 400);
    assert!(
        still_fails(&min.program),
        "minimizer returned a passing program:\n{}",
        min.program.render()
    );
    assert!(min.program.line_count() <= prog.line_count());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean sweep over the full in-process oracle matrix: no mismatches,
/// and the engine/cache bit-identity group holds.
#[test]
fn full_matrix_sweep_is_clean() {
    let cfg = FuzzConfig {
        seed: 20260806,
        cases: 6,
        ..FuzzConfig::default()
    };
    let summary = run_fuzz(&cfg);
    assert_eq!(
        summary.mismatches, 0,
        "oracle matrix diverged: {:?}",
        summary.reproducers
    );
    assert!(summary.ok());
    // Every case ran the full default matrix (minus legitimate skips).
    assert_eq!(
        summary.oracle_runs + summary.skips,
        summary.cases * Oracle::default_set().len() as u64
    );
}
