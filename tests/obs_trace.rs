//! End-to-end observability pin: a batch run with a JSONL trace
//! subscriber installed must produce parseable lines whose cache
//! hit/miss totals equal the engine's own [`metastate::CacheStats`]
//! counters. This is the contract that makes the trace trustworthy —
//! the event stream and the stats block are two views of one run.
//!
//! This file is its own test binary (and so its own process), which is
//! what makes installing the global subscriber here safe: no other
//! test can observe or perturb it.

use metastate::{Engine, EngineOptions, Job};
use msc_obs::jsonl::{parse_line, TraceLine};
use std::sync::Arc;

const PROG_A: &str = "main() { poly int x; x = pe_id() * 2 + 1; return(x); }";
const PROG_B: &str = r#"
    main() {
        poly int x, acc = 0;
        x = pe_id() % 4;
        while (x > 0) { acc += x; x -= 1; }
        return(acc);
    }
"#;

#[test]
fn jsonl_trace_totals_match_cache_stats() {
    let dir = std::env::temp_dir().join(format!("msc_obs_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("batch.jsonl");

    let sink = Arc::new(msc_obs::JsonlSink::create(&trace_path).unwrap());
    let guard = msc_obs::install(sink.clone());

    let engine = Engine::new(EngineOptions {
        threads: 2,
        cache_capacity: 8,
        ..EngineOptions::default()
    });
    // a and c share a source: one miss then one memory hit; b is a
    // second distinct miss.
    let jobs = vec![
        Job::new("a.mimdc", PROG_A),
        Job::new("b.mimdc", PROG_B),
        Job::new("c.mimdc", PROG_A),
    ];
    let results = engine.compile_many(&jobs);
    assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
    let stats = engine.cache_stats();
    // Singleflight makes the totals deterministic even with the two
    // PROG_A jobs racing: exactly one of the pair compiles (one miss),
    // and its twin either coalesces onto the in-flight compile or hits
    // the cache just after it lands.
    assert_eq!(stats.misses, 2, "{stats:?}");
    assert_eq!(
        stats.hits + stats.disk_hits + engine.coalesced(),
        1,
        "{stats:?} coalesced={}",
        engine.coalesced()
    );

    drop(guard);
    sink.flush().unwrap();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let (mut hits, mut disk_hits, mut misses, mut coalesced, mut parsed) =
        (0u64, 0u64, 0u64, 0u64, 0usize);
    for line in text.lines() {
        let ev = parse_line(line).unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        parsed += 1;
        if let TraceLine::Count { name, delta } = ev {
            match name.as_str() {
                "cache.hit" => hits += delta,
                "cache.disk_hit" => disk_hits += delta,
                "cache.miss" => misses += delta,
                "engine.coalesced" => coalesced += delta,
                _ => {}
            }
        }
    }
    assert!(parsed > 0, "trace file is empty");
    assert_eq!(hits, stats.hits, "trace cache.hit total != CacheStats.hits");
    assert_eq!(
        disk_hits, stats.disk_hits,
        "trace cache.disk_hit total != CacheStats.disk_hits"
    );
    assert_eq!(
        misses, stats.misses,
        "trace cache.miss total != CacheStats.misses"
    );
    assert_eq!(
        coalesced,
        engine.coalesced(),
        "trace engine.coalesced total != Engine::coalesced"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_batch_trace_and_metrics_agree() {
    // The same pin through the CLI surface: --trace-out + --metrics on a
    // batch, then cross-check the JSONL totals against the rendered
    // stats line. (Serialized against the test above by the obs install
    // lock, so the two subscribers never interleave.)
    let dir = std::env::temp_dir().join(format!("msc_obs_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("cli.jsonl");

    let opts = msc_cli::CommonOpts {
        jobs: 2,
        stats: true,
        trace_out: Some(trace_path.display().to_string()),
        metrics: true,
        ..msc_cli::CommonOpts::default()
    };
    let sources = vec![
        ("a.mimdc".to_string(), PROG_A.to_string()),
        ("b.mimdc".to_string(), PROG_A.to_string()),
    ];
    let (out, failed) = msc_cli::execute_batch(&sources, &opts).unwrap();
    assert_eq!(failed, 0, "{out}");
    assert!(out.contains("-- metrics --"), "{out}");
    // The identical second source is either a memory hit (it started
    // after the first landed) or coalesced onto the in-flight compile.
    assert!(
        out.contains("1 memory hits") || out.contains("1 coalesced"),
        "{out}"
    );

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let (mut hits, mut misses, mut coalesced) = (0u64, 0u64, 0u64);
    for line in text.lines() {
        match parse_line(line) {
            Some(TraceLine::Count { name, delta }) if name == "cache.hit" => hits += delta,
            Some(TraceLine::Count { name, delta }) if name == "cache.miss" => misses += delta,
            Some(TraceLine::Count { name, delta }) if name == "engine.coalesced" => {
                coalesced += delta
            }
            Some(_) => {}
            None => panic!("unparseable trace line: {line}"),
        }
    }
    assert_eq!(
        hits + coalesced,
        1,
        "identical second source must share the first compile"
    );
    assert_eq!(misses, 1, "first compile of the shared source must miss");

    std::fs::remove_dir_all(&dir).ok();
}
