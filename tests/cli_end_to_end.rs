//! End-to-end CLI tests: `mscc` driven through its library entry point
//! with real files on disk (the binary itself is a two-line shell over
//! this path).

use msc_cli::main_with_args;
use std::io::Write as _;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mscc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

const PROG: &str = r#"
    main() {
        poly int x, i, acc = 0;
        for (i = 0; i <= pe_id(); i += 1) { acc += i; }
        x = acc * 2;
        return(x);
    }
"#;

#[test]
fn build_and_run_from_file() {
    let path = write_temp("prog.mimdc", PROG);
    let p = path.to_str().unwrap();

    let auto = main_with_args(&args(&["build", p])).unwrap();
    assert!(auto.contains("meta states"), "{auto}");

    let run = main_with_args(&args(&["run", p, "--pes", "5", "--compare"])).unwrap();
    // Triangle numbers doubled: PE 4 → (0+1+2+3+4)*2 = 20.
    assert!(run.contains(" 4 | 20"), "{run}");
    assert!(run.contains("results MATCH"), "{run}");
}

#[test]
fn emit_asm_round_trips_through_the_simulator() {
    let path = write_temp("asm_prog.mimdc", PROG);
    let p = path.to_str().unwrap();
    let asm = main_with_args(&args(&["build", p, "--emit", "asm"])).unwrap();
    let program = msc_simd::parse_asm(&asm, msc_ir::CostModel::default()).unwrap();
    let cfg = msc_simd::MachineConfig::spmd(5);
    let mut m = msc_simd::SimdMachine::new(&program, &cfg);
    m.run(&program, &cfg).unwrap();
    // main's return slot address is recoverable from a fresh compile.
    let compiled = msc_lang::compile(PROG).unwrap();
    let ret = compiled.layout.main_ret.unwrap();
    assert_eq!(m.poly_at(4, ret), 20);
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = main_with_args(&args(&["run", "/nonexistent/nope.mimdc"])).unwrap_err();
    assert!(err.0.contains("cannot read"), "{err}");
}

#[test]
fn compile_error_is_a_clean_error() {
    let path = write_temp("bad.mimdc", "main() { undeclared_var = 1; }");
    let err = main_with_args(&args(&["build", path.to_str().unwrap()])).unwrap_err();
    assert!(err.0.contains("undeclared"), "{err}");
}

#[test]
fn every_flag_combination_smoke() {
    let path = write_temp("flags.mimdc", PROG);
    let p = path.to_str().unwrap();
    for mode in ["base", "compressed"] {
        for extra in [
            &[][..],
            &["--optimize"][..],
            &["--minimize"][..],
            &["--no-csi"][..],
            &["--time-split"][..],
        ] {
            let mut a = args(&["run", p, "--pes", "4", "--mode", mode]);
            a.extend(extra.iter().map(|s| s.to_string()));
            let out =
                main_with_args(&a).unwrap_or_else(|e| panic!("mode={mode} extra={extra:?}: {e}"));
            assert!(
                out.contains(" 3 | 12"),
                "mode={mode} extra={extra:?}: {out}"
            );
        }
    }
}
