//! Regression pin for the SIMD machine's execution accounting.
//!
//! The dispatch hot path maintains the live-PE count and the per-state
//! occupancy table incrementally (updated only for PEs whose `pc` actually
//! changed) instead of rescanning every PE each cycle. These tests pin the
//! full [`Metrics`] struct and the trace shape against values captured
//! from the straightforward rescan-everything implementation, so any drift
//! in the incremental bookkeeping shows up as a hard failure.

use metastate::simd::MachineConfig;
use metastate::{ConvertMode, Pipeline};

/// Divergent per-PE work: exercises `Hashed` dispatch (multiway exits,
/// aggregate keys built from the per-state occupancy) on every iteration.
fn branchy_src() -> String {
    let mut body = String::new();
    for k in 0..3 {
        if k < 2 {
            body.push_str(&format!("        if (kind == {k}) {{\n"));
        } else {
            body.push_str("        {\n");
        }
        body.push_str(&format!(
            "            for (i = 0; i < pe_id() % 4 + {}; i += 1) {{ acc += i * {}; }}\n",
            k + 1,
            k + 3
        ));
        if k < 2 {
            body.push_str("        } else\n");
        } else {
            body.push_str("        }\n");
        }
    }
    format!(
        "main() {{\n    poly int kind, i, acc = 0;\n        kind = pe_id() % 3;\n{body}    return(acc);\n}}\n"
    )
}

/// Barrier-phased work: exercises the §3.2.4 barrier adjustment of the
/// aggregate key and the all-at-barrier check.
fn barrier_src() -> String {
    let mut body = String::new();
    for p in 0..2 {
        body.push_str(&format!(
            "    for (i = 0; i < pe_id() % 3 + 1; i += 1) {{ acc += {}; }}\n    wait;\n",
            p + 1
        ));
    }
    format!("main() {{\n    poly int i, acc = 0;\n{body}    return(acc);\n}}\n")
}

fn run(src: &str, mode: ConvertMode, n_pe: usize) -> (metastate::simd::Metrics, usize, u64) {
    let built = Pipeline::new(src).mode(mode).build().unwrap();
    let cfg = MachineConfig::spmd(n_pe).with_trace();
    let mut machine = metastate::SimdMachine::new(&built.simd, &cfg);
    let metrics = machine.run(&built.simd, &cfg).unwrap();
    let visits: u64 = machine.visits.iter().sum();
    (metrics, machine.trace.len(), visits)
}

#[test]
fn branchy_base_mode_metrics_unchanged() {
    let (m, trace_len, visits) = run(&branchy_src(), ConvertMode::Base, 8);
    assert_eq!(m.cycles, 501, "PIN cycles");
    assert_eq!(m.body_cycles, 358, "PIN body");
    assert_eq!(m.guard_cycles, 78, "PIN guard");
    assert_eq!(m.dispatch_cycles, 65, "PIN dispatch");
    assert_eq!(m.issues, 172, "PIN issues");
    assert_eq!(m.dispatches, 9, "PIN dispatches");
    assert_eq!(m.enabled_pe_cycles, 1639, "PIN enabled");
    assert_eq!(m.live_pe_cycles, 2351, "PIN live");
    assert_eq!(trace_len, 18, "PIN trace_len");
    assert_eq!(visits, 9, "PIN visits");
}

#[test]
fn branchy_compressed_mode_metrics_unchanged() {
    let (m, trace_len, visits) = run(&branchy_src(), ConvertMode::Compressed, 8);
    assert_eq!(m.cycles, 526, "PIN cycles");
    assert_eq!(m.body_cycles, 416, "PIN body");
    assert_eq!(m.guard_cycles, 101, "PIN guard");
    assert_eq!(m.dispatch_cycles, 9, "PIN dispatch");
    assert_eq!(m.issues, 205, "PIN issues");
    assert_eq!(m.dispatches, 9, "PIN dispatches");
    assert_eq!(m.enabled_pe_cycles, 1639, "PIN enabled");
    assert_eq!(m.live_pe_cycles, 2512, "PIN live");
    assert_eq!(trace_len, 18, "PIN trace_len");
    assert_eq!(visits, 9, "PIN visits");
}

#[test]
fn barrier_base_mode_metrics_unchanged() {
    let (m, trace_len, visits) = run(&barrier_src(), ConvertMode::Base, 6);
    assert_eq!(m.cycles, 352, "PIN cycles");
    assert_eq!(m.body_cycles, 278, "PIN body");
    assert_eq!(m.guard_cycles, 9, "PIN guard");
    assert_eq!(m.dispatch_cycles, 65, "PIN dispatch");
    assert_eq!(m.issues, 121, "PIN issues");
    assert_eq!(m.dispatches, 9, "PIN dispatches");
    assert_eq!(m.enabled_pe_cycles, 1236, "PIN enabled");
    assert_eq!(m.live_pe_cycles, 1668, "PIN live");
    assert_eq!(trace_len, 18, "PIN trace_len");
    assert_eq!(visits, 9, "PIN visits");
}

#[test]
fn barrier_compressed_mode_metrics_unchanged() {
    let (m, trace_len, visits) = run(&barrier_src(), ConvertMode::Compressed, 6);
    assert_eq!(m.cycles, 352, "PIN cycles");
    assert_eq!(m.body_cycles, 278, "PIN body");
    assert_eq!(m.guard_cycles, 9, "PIN guard");
    assert_eq!(m.dispatch_cycles, 65, "PIN dispatch");
    assert_eq!(m.issues, 121, "PIN issues");
    assert_eq!(m.dispatches, 9, "PIN dispatches");
    assert_eq!(m.enabled_pe_cycles, 1236, "PIN enabled");
    assert_eq!(m.live_pe_cycles, 1668, "PIN live");
    assert_eq!(trace_len, 18, "PIN trace_len");
    assert_eq!(visits, 9, "PIN visits");
}
