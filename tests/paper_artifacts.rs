//! Structure checks for every figure and listing in the paper, via the
//! public API (the `figures` binary in msc-bench renders the same
//! artifacts for human inspection; these tests pin their structure).

mod common;

use metastate::{ConvertMode, Pipeline};
use msc_core::StateSet;
use msc_ir::{StateId, Terminator};

/// The paper's Listing 1 / Listing 4 control structure.
const LISTING4: &str = r#"
    main() {
        poly int x;
        if (x) { do { x = 1; } while (x); }
        else   { do { x = 2; } while (x); }
        return(x);
    }
"#;

/// Listing 3: Listing 1 plus a barrier before F.
const LISTING3: &str = r#"
    main() {
        poly int x;
        if (x) { do { x = 1; } while (x); }
        else   { do { x = 2; } while (x); }
        wait; /* barrier sync. of all threads */
        return(x);
    }
"#;

fn set(v: &[u32]) -> StateSet {
    StateSet::from_iter(v.iter().map(|&x| StateId(x)))
}

/// Figure 1: the MIMD state graph of Listing 1 — four states
/// (A | B;C | D;E | F), A branching to the two do-while loops, each
/// looping to itself or falling through to F.
#[test]
fn figure1_mimd_state_graph() {
    let p = msc_lang::compile(LISTING4).unwrap();
    let g = &p.graph;
    assert_eq!(g.len(), 4);
    let Terminator::Branch { t: b, f: d } = g.state(g.start).term else {
        panic!("A must branch");
    };
    for loop_state in [b, d] {
        let Terminator::Branch { t, f } = g.state(loop_state).term else {
            panic!("loop state must branch");
        };
        assert_eq!(t, loop_state);
        assert_eq!(g.state(f).term, Terminator::Halt, "F ends the process");
    }
}

/// Figure 2: base conversion gives exactly eight meta states with the
/// paper's membership sets (our state ids: 0=A, 1=B;C, 2=D;E, 3=F where
/// the paper uses 0, 2, 6, 9).
#[test]
fn figure2_base_meta_state_graph() {
    let built = Pipeline::new(LISTING4)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    let a = &built.automaton;
    assert_eq!(a.len(), 8);
    for members in [
        set(&[0]),
        set(&[1]),
        set(&[2]),
        set(&[3]),
        set(&[1, 2]),
        set(&[1, 3]),
        set(&[2, 3]),
        set(&[1, 2, 3]),
    ] {
        assert!(
            a.find(&members).is_some(),
            "missing {members}:\n{}",
            a.text()
        );
    }
    // Start is {A}; {F} is the only terminal meta state.
    assert_eq!(a.members(a.start), &set(&[0]));
    let terminal: Vec<_> = (0..a.len())
        .filter(|&i| a.successors(msc_core::MetaId(i as u32)).is_empty())
        .collect();
    assert_eq!(terminal.len(), 1);
}

/// Figures 3–4: time splitting an (α, β) pair with t(α) ≪ t(β) produces
/// β₀ (cost = t(α)) chained to β′, and the meta state {α, β₀} is balanced.
#[test]
fn figures3_4_time_splitting() {
    use metastate::TimeSplitOptions;
    let src = r#"
        main() {
            poly int x = 0;
            if (pe_id() % 2) {
                x = 1;                     /* short α */
            } else {
                x = ((((pe_id() * 3 + 7) * 5 - 2) * 9 + 4) * 11 - 6) * 13; /* long β */
            }
            return(x);
        }
    "#;
    let built = Pipeline::new(src)
        .mode(ConvertMode::Base)
        .time_split(TimeSplitOptions {
            split_delta: 2,
            split_percent: 75,
            max_restarts: 100,
        })
        .build()
        .unwrap();
    assert!(built.stats.splits >= 1, "β must split");
    assert!(
        built.automaton.max_imbalance(&msc_ir::CostModel::default()) <= 2,
        "meta states balanced to within split_delta:\n{}",
        built.automaton.text()
    );
    // And execution still matches the MIMD reference.
    let reference = common::run_reference(src, 4);
    let out = built.run(4).unwrap();
    let ret = built.ret_addr().unwrap();
    let vals: Vec<i64> = (0..4).map(|pe| out.machine.poly_at(pe, ret)).collect();
    assert_eq!(vals, reference.values);
}

/// Figure 5: compression (with superset subsumption) reduces the automaton
/// to two meta states, and the entry to the compressed state is
/// unconditional.
#[test]
fn figure5_compressed_graph() {
    let built = Pipeline::new(LISTING4)
        .mode(ConvertMode::Compressed)
        .build()
        .unwrap();
    let a = &built.automaton;
    assert_eq!(a.len(), 2, "{}", a.text());
    assert!(a.is_deterministic());
    assert!(a.find(&set(&[1, 2, 3])).is_some());
    // §3.2.2: "all entries to compressed meta states fall into this
    // [single-exit-arc] category" — the generated dispatches are Direct.
    for b in &built.simd.blocks {
        assert!(matches!(
            b.dispatch,
            msc_simd::Dispatch::Direct(_) | msc_simd::Dispatch::End
        ));
    }
}

/// Figure 6: the barrier constrains transitions — no meta state mixes F
/// with a loop state, and the all-barrier meta state exists.
#[test]
fn figure6_barrier_graph() {
    let built = Pipeline::new(LISTING3)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    let a = &built.automaton;
    assert_eq!(a.len(), 5, "{{A}},{{B}},{{D}},{{B,D}},{{F}}:\n{}", a.text());
    assert!(a.find(&set(&[1, 3])).is_none());
    assert!(a.find(&set(&[2, 3])).is_none());
    assert!(a.find(&set(&[1, 2, 3])).is_none());
    let f = a.find(&set(&[3])).expect("the all-barrier meta state");
    assert!(a.successors(f).is_empty());
}

/// Listing 5: the full pipeline output for Listing 4 — eight labeled meta
/// states, guarded stack code, CSI-shared bodies, hashed switches.
#[test]
fn listing5_generated_code_shape() {
    let built = Pipeline::new(LISTING4)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    let text = built.mpl();
    // Eight meta-state labels.
    let labels = text
        .lines()
        .filter(|l| l.starts_with("ms_") && l.ends_with(':'))
        .count();
    assert_eq!(labels, 8, "{text}");
    // Per-member guards and shared (multi-bit) guards both present.
    assert!(text.contains("if (pc & BIT("), "{text}");
    assert!(
        text.contains("|BIT("),
        "CSI factoring shows as merged guards: {text}"
    );
    // globalor aggregate + hashed switch + goto-style dispatch + exit.
    assert!(text.contains("apc = globalor(pc);"));
    assert!(text.contains("switch ("));
    assert!(text.contains("goto ms_"));
    assert!(text.contains("exit(0);"));
    // Stack ops in the paper's style.
    assert!(text.contains("Push("));
    assert!(text.contains("JumpF("));
}

/// The §2.5 claim around Figure 5: compression makes meta states *wider*
/// (less SIMD-efficient) while shrinking the automaton.
#[test]
fn compression_width_tradeoff() {
    let base = Pipeline::new(LISTING4)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    let comp = Pipeline::new(LISTING4)
        .mode(ConvertMode::Compressed)
        .build()
        .unwrap();
    assert!(comp.automaton.len() < base.automaton.len());
    assert!(
        comp.automaton.avg_width() > base.automaton.avg_width(),
        "compressed {} vs base {}",
        comp.automaton.avg_width(),
        base.automaton.avg_width()
    );
}

/// The terminating Listing-4 variant executes identically in all modes
/// (semantics check backing the Listing 5 reproduction).
#[test]
fn listing4_variant_executes() {
    common::assert_all_modes_agree(
        r#"
        main() {
            poly int x, n;
            x = pe_id() % 2;
            n = 0;
            if (x) { do { n += 1; x -= 1; } while (x); }
            else   { do { n += 10; } while (x); }
            return(n);
        }
        "#,
        8,
    );
}
