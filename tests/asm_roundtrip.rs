//! Assembly round-trip: serialize a compiled program, parse it back, and
//! check the reloaded program is structurally identical and executes to
//! the same per-PE results. Exercises every dispatch kind and the whole
//! instruction set as it appears in real pipeline output.

use metastate::{ConvertMode, Pipeline};
use msc_simd::{parse_asm, serialize_asm, MachineConfig, SimdMachine};

fn roundtrip_and_compare(src: &str, mode: ConvertMode, n_pe: usize) {
    let built = Pipeline::new(src).mode(mode).build().expect("pipeline");
    let text = serialize_asm(&built.simd);
    let reloaded = parse_asm(&text, built.simd.costs.clone())
        .unwrap_or_else(|e| panic!("{e}\n--- asm ---\n{text}"));

    // Structural identity.
    assert_eq!(reloaded.start, built.simd.start);
    assert_eq!(reloaded.start_state, built.simd.start_state);
    assert_eq!(reloaded.poly_words, built.simd.poly_words);
    assert_eq!(reloaded.blocks.len(), built.simd.blocks.len());
    for (a, b) in reloaded.blocks.iter().zip(&built.simd.blocks) {
        assert_eq!(a.members, b.members);
        assert_eq!(a.name, b.name);
        assert_eq!(a.body, b.body);
        assert_eq!(a.dispatch, b.dispatch);
    }

    // Behavioural identity.
    let cfg = MachineConfig::spmd(n_pe);
    let mut m1 = SimdMachine::new(&built.simd, &cfg);
    m1.run(&built.simd, &cfg).expect("original runs");
    let mut m2 = SimdMachine::new(&reloaded, &cfg);
    m2.run(&reloaded, &cfg).expect("reloaded runs");
    if let Some(ret) = built.ret_addr() {
        for pe in 0..n_pe {
            assert_eq!(m1.poly_at(pe, ret), m2.poly_at(pe, ret), "PE {pe}");
        }
    }
    assert_eq!(
        m1.metrics, m2.metrics,
        "identical programs cost identically"
    );
}

#[test]
fn roundtrip_branching_program_base() {
    roundtrip_and_compare(
        r#"
        main() {
            poly int x, i, acc = 0;
            x = pe_id() % 3;
            for (i = 0; i < x + 1; i += 1) { acc += i * 7; }
            if (acc > 5) { acc -= 3; } else { acc += 3; }
            return(acc);
        }
        "#,
        ConvertMode::Base,
        6,
    );
}

#[test]
fn roundtrip_compressed_direct_dispatches() {
    roundtrip_and_compare(
        r#"
        main() {
            poly int x, n = 0;
            x = pe_id() % 2;
            if (x) { do { n += 1; x -= 1; } while (x); }
            else   { do { n += 10; } while (x); }
            return(n);
        }
        "#,
        ConvertMode::Compressed,
        4,
    );
}

#[test]
fn roundtrip_barrier_program() {
    roundtrip_and_compare(
        r#"
        mono int shared;
        main() {
            poly int i, x = 0;
            if (pe_id() == 0) {
                for (i = 0; i < 10; i += 1) { x += 1; }
                shared = 7;
            }
            wait;
            return(shared + pe_id());
        }
        "#,
        ConvertMode::Base,
        4,
    );
}

#[test]
fn roundtrip_recursion_with_retmulti() {
    roundtrip_and_compare(
        r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        main() {
            poly int x;
            x = fib(pe_id() % 5 + 1);
            return(x);
        }
        "#,
        ConvertMode::Compressed,
        6,
    );
}

#[test]
fn roundtrip_float_program() {
    roundtrip_and_compare(
        r#"
        main() {
            poly float f;
            poly int x;
            f = pe_id() * 1.5 + 0.25;
            if (f > 2.0) { x = 1; } else { x = 2; }
            return(x);
        }
        "#,
        ConvertMode::Base,
        4,
    );
}

#[test]
fn asm_text_is_human_shaped() {
    let built = Pipeline::new("main() { poly int x = 1; return(x); }")
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    let text = serialize_asm(&built.simd);
    assert!(text.starts_with(".program start=mb0"), "{text}");
    assert!(text.contains(".block mb0 ms_0 members=s0"), "{text}");
    assert!(text.contains("[s0] Push 1"), "{text}");
    assert!(text.contains(".dispatch end"), "{text}");
}
