//! Cross-mode equivalence: the meta-state-converted SIMD program must
//! compute exactly what true MIMD execution computes (§1.2: the automaton
//! "preserves the relative timing properties of MIMD execution" — and, a
//! fortiori, its results), and so must the §1.1 interpreter baseline.

mod common;
use common::assert_all_modes_agree;

#[test]
fn straight_line_arithmetic() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int x;
            x = (pe_id() + 3) * 7 - pe_id() / 2;
            return(x);
        }
        "#,
        8,
    );
}

#[test]
fn data_dependent_branching() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int x;
            if (pe_id() % 3 == 0)      { x = 100 + pe_id(); }
            else { if (pe_id() % 3 == 1) { x = 200 + pe_id(); }
                   else                  { x = 300 + pe_id(); } }
            return(x);
        }
        "#,
        9,
    );
}

#[test]
fn divergent_loop_trip_counts() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int i, acc = 0;
            for (i = 0; i < pe_id() + 1; i += 1) { acc += i * i; }
            return(acc);
        }
        "#,
        7,
    );
}

#[test]
fn nested_loops() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int i, j, acc = 0;
            for (i = 0; i < pe_id() % 3 + 1; i += 1) {
                for (j = 0; j < i + 1; j += 1) {
                    acc += i * 10 + j;
                }
            }
            return(acc);
        }
        "#,
        6,
    );
}

#[test]
fn barrier_synchronized_phases() {
    assert_all_modes_agree(
        r#"
        mono int shared;
        main() {
            poly int i, x = 0;
            if (pe_id() == 0) {
                for (i = 0; i < 30; i += 1) { x += 1; }
                shared = 42;
            }
            wait;
            x = shared + pe_id();
            wait;
            return(x);
        }
        "#,
        5,
    );
}

#[test]
fn function_calls_inline() {
    assert_all_modes_agree(
        r#"
        int clamp(int v, int hi) {
            if (v > hi) return hi;
            return v;
        }
        main() {
            poly int x;
            x = clamp(pe_id() * 3, 10) + clamp(pe_id(), 2);
            return(x);
        }
        "#,
        8,
    );
}

#[test]
fn recursion_factorial() {
    assert_all_modes_agree(
        r#"
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        main() {
            poly int x;
            x = fact(pe_id() % 5 + 1);
            return(x);
        }
        "#,
        10,
    );
}

#[test]
fn recursion_fibonacci_two_calls() {
    let src = r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        main() {
            poly int x;
            x = fib(pe_id() % 6 + 1);
            return(x);
        }
    "#;
    assert_all_modes_agree(src, 8);
    // Also pin against host-computed ground truth (catches the case where
    // every simulator is consistently wrong, e.g. clobbered activation
    // records across the first recursive call).
    fn fib(n: i64) -> i64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    let got = common::run_reference(src, 8).values;
    let want: Vec<i64> = (0..8).map(|pe| fib(pe % 6 + 1)).collect();
    assert_eq!(got, want);
}

#[test]
fn mutual_recursion() {
    assert_all_modes_agree(
        r#"
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n)  { if (n == 0) return 0; return is_even(n - 1); }
        main() {
            poly int x;
            x = is_even(pe_id());
            return(x);
        }
        "#,
        8,
    );
}

#[test]
fn float_arithmetic() {
    assert_all_modes_agree(
        r#"
        main() {
            poly float f;
            poly int x;
            f = 1.5 * pe_id() + 0.25;
            if (f > 3.0) { x = 1; } else { x = 0; }
            return(x * 1000 + pe_id());
        }
        "#,
        6,
    );
}

#[test]
fn parallel_subscript_neighbour_exchange() {
    // Barrier separates the write phase from the read phase, so results
    // are deterministic in every execution mode.
    assert_all_modes_agree(
        r#"
        main() {
            poly int mine, left;
            mine = pe_id() * pe_id();
            wait;
            left = mine[[pe_id() - 1]];
            return(left);
        }
        "#,
        6,
    );
}

#[test]
fn logical_operators() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int a, b, x;
            a = pe_id() % 2;
            b = pe_id() % 3;
            x = (a && b) * 100 + (a || b) * 10 + (!a);
            return(x);
        }
        "#,
        12,
    );
}

#[test]
fn bitwise_and_shifts() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int x;
            x = ((pe_id() << 3) | 5) ^ (pe_id() & 3);
            x = x + (x >> 1) + (~pe_id() & 15);
            return(x);
        }
        "#,
        8,
    );
}

#[test]
fn while_loop_zero_trip() {
    // The §4.2 normalization must preserve zero-iteration semantics.
    assert_all_modes_agree(
        r#"
        main() {
            poly int i = 0, acc = 7;
            while (i < pe_id()) { acc += 2; i += 1; }
            return(acc);
        }
        "#,
        4, // includes PE 0, whose loop runs zero times
    );
}

#[test]
fn break_and_continue() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int i, acc = 0;
            for (i = 0; i < 20; i += 1) {
                if (i % 2) continue;
                if (i > pe_id() + 5) break;
                acc += i;
            }
            return(acc);
        }
        "#,
        6,
    );
}

#[test]
fn mono_broadcast_without_race() {
    assert_all_modes_agree(
        r#"
        mono int config;
        main() {
            poly int x;
            if (pe_id() == 2) { config = 99; }
            wait;
            x = config * 2 + pe_id();
            return(x);
        }
        "#,
        4,
    );
}

#[test]
fn compound_assignment_operators() {
    assert_all_modes_agree(
        r#"
        main() {
            poly int x = 100;
            x += pe_id();
            x -= 1;
            x *= 2;
            x /= 3;
            x %= 50;
            return(x);
        }
        "#,
        7,
    );
}

#[test]
fn time_split_mode_agrees_too() {
    // Time splitting changes the automaton but must not change results.
    use metastate::{ConvertMode, Pipeline, TimeSplitOptions};
    let src = r#"
        main() {
            poly int i, x = 0;
            if (pe_id() % 2) {
                x = pe_id() + 1;
            } else {
                for (i = 0; i < 40; i += 1) { x += i % 7; }
            }
            return(x);
        }
    "#;
    let reference = common::run_reference(src, 8);
    let built = Pipeline::new(src)
        .mode(ConvertMode::Compressed)
        .time_split(TimeSplitOptions::default())
        .build()
        .unwrap();
    let out = built.run(8).unwrap();
    let ret = built.ret_addr().unwrap();
    let values: Vec<i64> = (0..8).map(|pe| out.machine.poly_at(pe, ret)).collect();
    assert_eq!(values, reference.values);
    assert!(
        built.stats.splits > 0,
        "the imbalanced branch should have split"
    );
}
