//! Control parallelism on SIMD hardware — the paper's motivating workload.
//!
//! Each PE takes a data-dependent path through a little task dispatcher
//! (classify → three very different work loops), which is exactly the
//! "each processor can take its own path independent of all others"
//! behaviour that seems to require MIMD hardware (§1). The example runs it
//! three ways and prints the §1.1-vs-§1.2 comparison:
//!
//! * true MIMD (reference simulator) — the semantics baseline,
//! * meta-state converted SIMD (this paper's technique),
//! * MIMD-interpreter-on-SIMD (the classical emulation approach),
//!
//! showing that MSC preserves MIMD results while beating interpretation on
//! cycles and per-PE memory.
//!
//! ```text
//! cargo run --example branchy_workers
//! ```

use metastate::{ConvertMode, Pipeline};
use msc_ir::CostModel;
use msc_mimd::{InterpProgram, MimdConfig, MimdReference};

const SRC: &str = r#"
    int collatz_steps(int n) {
        poly int steps = 0;
        while (n != 1) {
            if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
            steps += 1;
        }
        return steps;
    }

    int triangle(int n) {
        poly int i, acc = 0;
        for (i = 1; i <= n; i += 1) { acc += i; }
        return acc;
    }

    main() {
        poly int kind, x;
        kind = pe_id() % 3;
        if (kind == 0)      { x = collatz_steps(pe_id() + 5); }
        else { if (kind == 1) { x = triangle(pe_id() * 2); }
               else           { x = (pe_id() + 1) * (pe_id() + 1); } }
        return(x);
    }
"#;

fn main() {
    let n_pe = 12;

    // True MIMD reference.
    let compiled = msc_lang::compile(SRC).expect("compiles");
    let mcfg = MimdConfig::spmd(n_pe);
    let mut mimd = MimdReference::new(
        compiled.layout.poly_words,
        compiled.layout.mono_words,
        &mcfg,
    );
    let mimd_metrics = mimd.run(&compiled.graph, &mcfg).expect("MIMD runs");
    let ret = compiled.layout.main_ret.unwrap();

    // Meta-state conversion, both ways: base (§2.3, fast) and compressed
    // (§2.5, small automaton but wider — "the SIMD implementation will be
    // less efficient").
    let built = Pipeline::new(SRC)
        .mode(ConvertMode::Base)
        .build()
        .expect("pipeline");
    let msc = built.run(n_pe).expect("MSC runs");
    let built_c = Pipeline::new(SRC)
        .mode(ConvertMode::Compressed)
        .build()
        .expect("pipeline");
    let msc_c = built_c.run(n_pe).expect("compressed MSC runs");

    // Interpreter baseline (§1.1).
    let (interp, interp_metrics) = msc_mimd::interpret_on_simd(
        &compiled.graph,
        compiled.layout.poly_words,
        compiled.layout.mono_words,
        n_pe,
        &CostModel::default(),
    )
    .expect("interpreter runs");
    let image = InterpProgram::flatten(
        &compiled.graph,
        compiled.layout.poly_words,
        compiled.layout.mono_words,
    );

    println!("PE | kind      | MIMD | MSC  | interp");
    println!("---+-----------+------+------+-------");
    for pe in 0..n_pe {
        let kind = ["collatz ", "triangle", "square  "][pe % 3];
        let (a, b, c) = (
            mimd.poly_at(pe, ret),
            msc.machine.poly_at(pe, ret),
            interp.poly_at(pe, ret),
        );
        assert_eq!(a, b, "MSC diverged from MIMD on PE {pe}");
        assert_eq!(a, c, "interpreter diverged from MIMD on PE {pe}");
        println!("{pe:2} | {kind} | {a:4} | {b:4} | {c:5}");
    }

    println!("\n                   cycles   per-PE program   meta states");
    println!(
        "MIMD (ideal):    {:8}   n/a (real MIMD)",
        mimd_metrics.cycles
    );
    println!(
        "MSC base:        {:8}   {:3} words        {:4}",
        msc.metrics.cycles,
        built.simd.per_pe_program_words(),
        built.automaton.len()
    );
    println!(
        "MSC compressed:  {:8}   {:3} words        {:4}",
        msc_c.metrics.cycles,
        built_c.simd.per_pe_program_words(),
        built_c.automaton.len()
    );
    println!(
        "interpreter:     {:8}   {:3} words        n/a",
        interp_metrics.cycles,
        image.per_pe_program_words()
    );
    println!(
        "\nbase MSC speedup over interpretation: {:.2}x, with zero per-PE program memory",
        interp_metrics.cycles as f64 / msc.metrics.cycles as f64,
    );
    println!(
        "compression shrinks the automaton {:.0}x but widens meta states (§2.5's trade-off)",
        built.automaton.len() as f64 / built_c.automaton.len() as f64
    );
    assert!(
        msc.metrics.cycles < interp_metrics.cycles,
        "C1 shape: MSC must win"
    );
}
