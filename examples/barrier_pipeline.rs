//! Barrier-synchronized phases (§2.6) — the paper's Listing 3 extended to
//! a three-stage pipeline: local work of divergent length, a barrier,
//! neighbour exchange through the router, another barrier, reduction.
//!
//! The point of the experiment (claim C9 in EXPERIMENTS.md): in the
//! meta-state program, synchronization is *implicit* — "synchronization is
//! implicit in the meta-state converted SIMD code, and hence has no
//! runtime cost" (§5). The barrier constrains which meta states exist; no
//! instruction implements it.
//!
//! ```text
//! cargo run --example barrier_pipeline
//! ```

use metastate::{ConvertMode, Pipeline};

const SRC: &str = r#"
    main() {
        poly int i, mine, left, right, smooth;

        /* Phase 1: divergent-length local work. */
        mine = 0;
        for (i = 0; i < pe_id() % 5 + 1; i += 1) {
            mine += pe_id() + i;
        }

        wait;   /* barrier: everyone's `mine` is final */

        /* Phase 2: neighbour exchange via parallel subscripting. */
        left  = mine[[pe_id() - 1]];
        right = mine[[pe_id() + 1]];

        wait;   /* barrier: all reads done before anyone overwrites */

        /* Phase 3: smooth. */
        smooth = (left + mine + right) / 3;
        return(smooth);
    }
"#;

fn main() {
    let n_pe = 8;
    let built = Pipeline::new(SRC)
        .mode(ConvertMode::Base)
        .build()
        .expect("pipeline");

    println!("=== Meta-state automaton (barrier-constrained, Figure 6 style) ===");
    println!("{}", built.automaton_text());

    let barrier_states: Vec<_> = built
        .automaton
        .graph
        .ids()
        .filter(|&s| built.automaton.graph.state(s).barrier)
        .collect();
    println!("barrier-entry MIMD states: {barrier_states:?}");
    println!(
        "note: no meta state mixes a barrier state with a non-barrier state \
         unless everyone arrived — the synchronization is in the automaton \
         structure, not in any instruction.\n"
    );

    let out = built.run(n_pe).expect("run");
    let ret = built.ret_addr().unwrap();

    println!("PE | smoothed");
    for pe in 0..n_pe {
        println!("{pe:2} | {}", out.machine.poly_at(pe, ret));
    }

    // Verify against the MIMD reference.
    let compiled = msc_lang::compile(SRC).unwrap();
    let cfg = msc_mimd::MimdConfig::spmd(n_pe);
    let mut mimd =
        msc_mimd::MimdReference::new(compiled.layout.poly_words, compiled.layout.mono_words, &cfg);
    mimd.run(&compiled.graph, &cfg).unwrap();
    for pe in 0..n_pe {
        assert_eq!(
            out.machine.poly_at(pe, ret),
            mimd.poly_at(pe, compiled.layout.main_ret.unwrap()),
            "PE {pe} diverged from the MIMD reference"
        );
    }
    println!("\nall PEs match the true-MIMD reference ✓");
    println!(
        "cycles={}, dispatches={}, zero synchronization instructions executed",
        out.metrics.cycles, out.metrics.dispatches
    );
}
