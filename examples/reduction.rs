//! Log-step parallel reduction — the classic data-parallel kernel, written
//! as a MIMD (SPMD) program and compiled through meta-state conversion.
//!
//! Each PE contributes `pe_id() + 1`; ⌈log₂ N⌉ barrier-separated rounds of
//! neighbour fetches through the router fold everything into PE 0. The
//! interesting part for the paper: the *loop trip count is uniform* but
//! the `if (active)` test diverges per PE and round, so even this "pure
//! data parallel" kernel exercises the meta-state machinery — and the
//! barrier keeps the automaton small (§2.6).
//!
//! ```text
//! cargo run --example reduction
//! ```

use metastate::{ConvertMode, Pipeline};

const SRC: &str = r#"
    main() {
        poly int value, stride, partner, fetched;
        value = pe_id() + 1;           /* reduce 1 + 2 + … + N */
        stride = 1;
        while (stride < nproc()) {
            wait;                      /* everyone's value is settled */
            partner = pe_id() + stride;
            fetched = 0;
            if (pe_id() % (stride * 2) == 0) {
                if (partner < nproc()) {
                    fetched = value[[partner]];
                }
            }
            wait;                      /* all reads done before writes */
            value += fetched;
            stride *= 2;
        }
        return(value);
    }
"#;

fn main() {
    let n_pe = 16;
    let built = Pipeline::new(SRC)
        .mode(ConvertMode::Base)
        .build()
        .expect("pipeline");

    println!(
        "automaton: {} meta states (barriers keep the space small, §2.6)\n",
        built.automaton.len()
    );

    let out = built.run(n_pe).expect("run");
    let ret = built.ret_addr().unwrap();

    let expect: i64 = (1..=n_pe as i64).sum();
    let got = out.machine.poly_at(0, ret);
    println!("PE 0 holds Σ(1..={n_pe}) = {got} (expected {expect})");
    assert_eq!(got, expect);

    // Cross-check every PE against the true-MIMD reference.
    let compiled = msc_lang::compile(SRC).unwrap();
    let cfg = msc_mimd::MimdConfig::spmd(n_pe);
    let mut mimd =
        msc_mimd::MimdReference::new(compiled.layout.poly_words, compiled.layout.mono_words, &cfg);
    mimd.run(&compiled.graph, &cfg).unwrap();
    for pe in 0..n_pe {
        assert_eq!(
            out.machine.poly_at(pe, ret),
            mimd.poly_at(pe, compiled.layout.main_ret.unwrap()),
            "PE {pe}"
        );
    }
    println!("all {n_pe} PEs match the true-MIMD reference ✓");
    println!(
        "\ncycles={}, dispatches={}, utilization={:.1}%",
        out.metrics.cycles,
        out.metrics.dispatches,
        out.metrics.utilization() * 100.0
    );
    println!(
        "log-step rounds: {} (⌈log2 {n_pe}⌉ = 4)",
        (n_pe as f64).log2().ceil()
    );
}
