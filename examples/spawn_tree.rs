//! Restricted dynamic process creation (§3.2.5): a coordinator process
//! spawns workers out of the idle-PE pool; each worker computes and then
//! `halt`s, returning its PE to the pool.
//!
//! "Initially, processing elements that are not in use would be given a
//! 'pc' value indicating that they are not in any meta state. When a
//! spawn(x) instruction is reached by N processing elements … N
//! currently-disabled processing elements are selected and their pc values
//! are set to x."
//!
//! ```text
//! cargo run --example spawn_tree
//! ```

use metastate::{ConvertMode, Pipeline};
use msc_simd::MachineConfig;

const SRC: &str = r#"
    void worker(int seed) {
        poly int r, i;
        r = 0;
        for (i = 1; i <= seed; i += 1) {
            r += i * seed;
        }
        /* falling off the end of a spawned process = halt: the PE
           returns to the free pool */
    }

    main() {
        poly int me = pe_id();
        /* Two generations of workers from the two live coordinators. */
        spawn worker(me + 2);
        spawn worker(me + 10);
    }
"#;

fn main() {
    let n_pe = 8;
    let live = 2; // two coordinators; six PEs idle in the pool

    let built = Pipeline::new(SRC)
        .mode(ConvertMode::Base)
        .build()
        .expect("pipeline");

    println!("=== Meta-state automaton (spawn arcs take both paths) ===");
    println!("{}", built.automaton_text());

    let cfg = MachineConfig::with_pool(n_pe, live);
    let out = built.run_with(cfg).expect("run");

    let r = built
        .compiled
        .layout
        .var("r")
        .expect("worker result var")
        .addr;
    println!(
        "{n_pe} PEs, {live} live coordinators, {} initially idle\n",
        n_pe - live
    );
    println!("PE | worker result r");
    for pe in 0..n_pe {
        let v = out.machine.poly_at(pe, r);
        let role = if pe < live {
            "coordinator"
        } else if v != 0 {
            "worker"
        } else {
            "unused"
        };
        println!("{pe:2} | {v:6}  ({role})");
    }

    // Four workers ran: seeds 2, 3 (first generation), 12, 11 (second).
    let results: Vec<i64> = (live..n_pe)
        .map(|pe| out.machine.poly_at(pe, r))
        .filter(|&v| v != 0)
        .collect();
    assert_eq!(results.len(), 4, "two coordinators × two spawns");
    println!(
        "\n{} workers completed; {} PEs back in the idle pool; cycles={}",
        results.len(),
        out.machine.idle_count(),
        out.metrics.cycles
    );
}
