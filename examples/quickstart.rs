//! Quickstart: compile the paper's Listing 4 control structure, look at
//! every pipeline stage, and execute the result on a simulated SIMD array.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use metastate::{ConvertMode, Pipeline};

fn main() {
    // The paper's Listing 4, made terminating: the original loops
    // `do { x = 1; } while (x)` forever by design (it exists to show the
    // automaton shape). Here each PE decrements a counter so both
    // do-while loops exit, while keeping the exact Figure 1 control
    // structure: if → two do-while loops → join.
    let src = r#"
        main() {
            poly int x, n;
            x = pe_id() % 4;          /* A: divergent condition */
            n = 0;
            if (x) { do { n += 1;  x -= 1; } while (x); }   /* B;C */
            else   { do { n += 10; x += 0; } while (x); }   /* D;E */
            return(n);                /* F */
        }
    "#;

    println!("=== MIMDC source ===\n{src}");

    // Stage 1+2: front end + meta-state conversion (base algorithm, §2.3).
    let built = Pipeline::new(src)
        .mode(ConvertMode::Base)
        .build()
        .expect("pipeline");

    println!("=== MIMD state graph (Figure 1 shape) ===");
    println!(
        "{}",
        msc_ir::render::text(&built.compiled.graph, &built.simd.costs)
    );

    println!("=== Meta-state automaton (Figure 2 shape) ===");
    println!("{}", built.automaton_text());

    // Stage 3: the generated SIMD program, in the MPL-like style of the
    // paper's Listing 5.
    println!("=== Generated SIMD program (Listing 5 style) ===");
    println!("{}", built.mpl());

    // Stage 4: run it.
    let n_pe = 8;
    let out = built.run(n_pe).expect("run");
    let ret = built.ret_addr().expect("main returns a value");

    println!("=== Execution on {n_pe} PEs ===");
    for pe in 0..n_pe {
        println!("  PE {pe}: n = {}", out.machine.poly_at(pe, ret));
    }
    println!(
        "\ncycles={} (body {} + guards {} + dispatch {}), issues={}, utilization={:.1}%",
        out.metrics.cycles,
        out.metrics.body_cycles,
        out.metrics.guard_cycles,
        out.metrics.dispatch_cycles,
        out.metrics.issues,
        out.metrics.utilization() * 100.0
    );
    println!(
        "per-PE program memory: {} words (the interpreter baseline would need a full program copy per PE)",
        built.simd.per_pe_program_words()
    );
}
