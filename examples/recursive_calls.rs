//! Recursive function calls through inline expansion (§2.2, the paper's
//! Listing 2 pattern): `return` statements become multiway branches over
//! the statically-computed set of return sites, selected at run time by a
//! per-PE return-site stack.
//!
//! Every PE computes a different recursive workload simultaneously — MIMD
//! control flow with recursion, running on SIMD hardware with one program
//! counter.
//!
//! ```text
//! cargo run --example recursive_calls
//! ```

use metastate::{ConvertMode, Pipeline};
use msc_ir::Terminator;

const SRC: &str = r#"
    int ackermann_ish(int m, int n) {
        /* A tamed two-argument recursion (true Ackermann explodes). */
        if (m == 0) return n + 1;
        if (n == 0) return ackermann_ish(m - 1, 1);
        return ackermann_ish(m - 1, n - 1) + 1;
    }

    int fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }

    main() {
        poly int x;
        if (pe_id() % 2) { x = fib(pe_id() % 7 + 1); }
        else             { x = ackermann_ish(2, pe_id() % 4); }
        return(x);
    }
"#;

fn main() {
    let built = Pipeline::new(SRC)
        .mode(ConvertMode::Compressed)
        .build()
        .expect("pipeline");

    // Show the §2.2 machinery in the MIMD graph: multiway return branches.
    let g = &built.compiled.graph;
    println!("MIMD graph: {} states", g.len());
    for id in g.ids() {
        if let Terminator::Multi(targets) = &g.state(id).term {
            println!(
                "  {id}: multiway return branch over {} statically-known return sites",
                targets.len()
            );
        }
    }
    println!("meta states: {}\n", built.automaton.len());

    let n_pe = 10;
    let out = built.run(n_pe).expect("run");
    let ret = built.ret_addr().unwrap();

    fn fib(n: i64) -> i64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    fn ack(m: i64, n: i64) -> i64 {
        if m == 0 {
            n + 1
        } else if n == 0 {
            ack(m - 1, 1)
        } else {
            ack(m - 1, n - 1) + 1
        }
    }

    println!("PE | workload             | SIMD result | host check");
    for pe in 0..n_pe as i64 {
        let (label, expect) = if pe % 2 == 1 {
            (format!("fib({})", pe % 7 + 1), fib(pe % 7 + 1))
        } else {
            (format!("ackermann_ish(2,{})", pe % 4), ack(2, pe % 4))
        };
        let got = out.machine.poly_at(pe as usize, ret);
        assert_eq!(got, expect, "PE {pe}");
        println!("{pe:2} | {label:20} | {got:11} | {expect} ✓");
    }
    println!(
        "\ncycles={}, utilization={:.1}%",
        out.metrics.cycles,
        out.metrics.utilization() * 100.0
    );
}
