#!/usr/bin/env bash
# CI gate: formatting, lints, docs, then the tier-1 build + test suite.
# This script is the single source of truth — .github/workflows/ci.yml
# just runs it.
#
#   ./ci.sh               the full gate (includes compiling the benches)
#   ./ci.sh bench-smoke   additionally *run* the set benches in their
#                         --test smoke configuration (small sizes, 2
#                         samples) and the bench-regression gate, which
#                         re-measures the setops speedups and fails if
#                         they fall >30% below BENCH_setops.json
#   ./ci.sh serve-smoke   additionally boot the real `mscc serve` daemon
#                         on a random port, drive every endpoint over TCP
#                         with `loadgen --smoke`, and check that SIGINT
#                         drains it cleanly
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-default}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== tier-1: build --release =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== benches compile =="
cargo bench --workspace --no-run

if [ "$MODE" = "bench-smoke" ]; then
    echo "== bench smoke: set_algebra --test =="
    cargo bench -p msc-bench --bench set_algebra -- --test
    echo "== bench smoke: subsume_scaling --test =="
    cargo bench -p msc-bench --bench subsume_scaling -- --test
    echo "== bench smoke: obs_overhead --test =="
    cargo bench -p msc-bench --bench obs_overhead -- --test
    echo "== bench regression gate: setops --check =="
    cargo run --release -p msc-bench --bin claims -- setops --check
fi

if [ "$MODE" = "serve-smoke" ]; then
    PORT=$(( 20000 + RANDOM % 20000 ))
    echo "== serve smoke: mscc serve on 127.0.0.1:${PORT} =="
    ./target/release/mscc serve --addr "127.0.0.1:${PORT}" --workers 4 &
    SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
    ./target/release/loadgen --smoke --addr "127.0.0.1:${PORT}"
    echo "== serve smoke: SIGINT drains the daemon =="
    kill -INT "$SERVE_PID"
    wait "$SERVE_PID"
    trap - EXIT
fi

echo "CI OK"
