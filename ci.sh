#!/usr/bin/env bash
# CI gate: formatting, lints, then the tier-1 build + test suite.
#
#   ./ci.sh               the full gate (includes compiling the benches)
#   ./ci.sh bench-smoke   additionally *run* the set benches in their
#                         --test smoke configuration (small sizes, 2
#                         samples) to prove the bench harness works
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-default}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build --release =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== benches compile =="
cargo bench --workspace --no-run

if [ "$MODE" = "bench-smoke" ]; then
    echo "== bench smoke: set_algebra --test =="
    cargo bench -p msc-bench --bench set_algebra -- --test
    echo "== bench smoke: subsume_scaling --test =="
    cargo bench -p msc-bench --bench subsume_scaling -- --test
fi

echo "CI OK"
