#!/usr/bin/env bash
# CI gate: formatting, lints, then the tier-1 build + test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build --release =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "CI OK"
