#!/usr/bin/env bash
# CI gate: formatting, lints, docs, then the tier-1 build + test suite.
# This script is the single source of truth — .github/workflows/ci.yml
# just runs it.
#
#   ./ci.sh               the full gate (tier-1 plus the spill-path and
#                         scalar-fallback test legs, the aarch64
#                         cross-check, and compiling the benches)
#   ./ci.sh bench-smoke   additionally *run* the set benches in their
#                         --test smoke configuration (small sizes, 2
#                         samples) and the bench-regression gates, which
#                         re-measure the setops speedups, the regex
#                         throughput, and the out-of-core explosion
#                         conversion and fail if they regress past the
#                         tolerances in BENCH_setops.json /
#                         BENCH_regex.json / BENCH_explosion.json
#   ./ci.sh serve-smoke   additionally boot the real `mscc serve` daemon
#                         on an ephemeral port, drive every endpoint over
#                         TCP with `loadgen --smoke` (including /match
#                         hit, miss, and malformed-pattern requests), run
#                         the serve bench-regression gate (claims --
#                         serve --check vs BENCH_serve.json), and check
#                         that SIGINT drains the daemon cleanly
#   ./ci.sh cluster-smoke additionally run the cluster bench-regression
#                         gate (claims -- cluster --check vs
#                         BENCH_cluster.json), which boots real `mscc
#                         serve` daemons, warms one, and asserts the
#                         other serves the workload entirely over
#                         GET /artifact/{key} peer fetches; daemon logs
#                         from cluster-logs/ are dumped on failure
#   ./ci.sh fuzz-smoke    additionally run the differential fuzzer over
#                         the full in-process oracle matrix (including
#                         the regex differential oracle) with a fixed
#                         seed; any mismatch fails the build and leaves
#                         minimized reproducers in fuzz-corpus/
#   ./ci.sh sweep-smoke   additionally run `mscc sweep` over every
#                         bundled machine profile in profiles/ on the
#                         dispatch-heavy example workload, then the
#                         sweep bench-regression gate (claims -- sweep
#                         --check vs BENCH_sweep.json), which re-runs
#                         the sweep against the committed profile files
#                         and fails on any exact-cycle drift or broken
#                         profile-ordering invariant
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-default}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== tier-1: build --release =="
# --workspace: the root is itself a package, so a bare `cargo build`
# would skip the member crates (and never produce target/release/mscc,
# which the smoke stages below execute).
cargo build --release --workspace

echo "== tier-1: test =="
cargo test -q --workspace

echo "== tier-1: test again under a tiny memory budget (spill path) =="
# 16k is far below any test workload's resident set, so every conversion
# in the suite runs through the out-of-core arena + worklist spill and
# must still produce bit-identical automata.
MSC_MEMORY_BUDGET=16k cargo test -q --workspace

echo "== tier-1: test again with SIMD kernels disabled (scalar path) =="
# MSC_NO_SIMD forces the portable scalar fallbacks everywhere the SIMD
# crate dispatches, so the suite proves the scalar kernels are not just
# dead code behind a feature probe.
MSC_NO_SIMD=1 cargo test -q --workspace

echo "== cross-check: aarch64-unknown-linux-gnu =="
# The reactor's epoll shim carries an arch-conditional epoll_event
# layout (packed on x86_64, natural elsewhere); type-check the whole
# workspace for a 64-bit non-x86 target so that cfg split cannot rot.
# `rustup target add aarch64-unknown-linux-gnu` is the only setup; skip
# with a notice when that target's std is not installed (e.g. offline).
if rustup target list --installed 2>/dev/null | grep -qx 'aarch64-unknown-linux-gnu'; then
    cargo check --workspace --target aarch64-unknown-linux-gnu
else
    echo "   aarch64-unknown-linux-gnu std not installed; skipping cross-check"
fi

echo "== benches compile =="
# One workspace-wide invocation instead of per-crate `cargo bench
# --no-run` calls; the bench profile matches release (no overrides in
# Cargo.toml), so this reuses the tier-1 build artifacts.
cargo build --benches --release --workspace

if [ "$MODE" = "bench-smoke" ]; then
    echo "== bench smoke: set_algebra --test =="
    cargo bench -p msc-bench --bench set_algebra -- --test
    echo "== bench smoke: subsume_scaling --test =="
    cargo bench -p msc-bench --bench subsume_scaling -- --test
    echo "== bench smoke: obs_overhead --test =="
    cargo bench -p msc-bench --bench obs_overhead -- --test
    echo "== bench regression gate: setops --check =="
    cargo run --release -p msc-bench --bin claims -- setops --check
    echo "== bench regression gate: regex --check =="
    cargo run --release -p msc-bench --bin claims -- regex --check
    echo "== bench regression gate: explosion --check =="
    cargo run --release -p msc-bench --bin claims -- explosion --check
fi

if [ "$MODE" = "serve-smoke" ]; then
    # Port 0 lets the kernel pick a free port — no RANDOM collisions on
    # busy runners. The daemon announces the bound address on stdout.
    SERVE_LOG="$(mktemp)"
    echo "== serve smoke: mscc serve on an ephemeral port =="
    ./target/release/mscc serve --addr 127.0.0.1:0 --workers 4 > "$SERVE_LOG" &
    SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"' EXIT
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/^msc-serve listening on //p' "$SERVE_LOG" | head -n 1)"
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$ADDR" ]; then
        echo "serve smoke: daemon never announced its address; daemon log follows" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    echo "   daemon bound to ${ADDR}"
    ./target/release/loadgen --smoke --addr "$ADDR"
    echo "== serve bench-regression gate: claims -- serve --check =="
    cargo run --release -p msc-bench --bin claims -- serve --check
    echo "== serve smoke: SIGINT drains the daemon =="
    kill -INT "$SERVE_PID"
    wait "$SERVE_PID"
    trap - EXIT
    rm -f "$SERVE_LOG"
fi

if [ "$MODE" = "cluster-smoke" ]; then
    # Subprocess daemons (the obs install lock is process-global), found
    # as siblings of the claims binary — tier-1 already built both. Logs
    # land in cluster-logs/<node>.log; dump them on failure so a red run
    # is diagnosable from the CI console alone.
    echo "== cluster smoke: claims -- cluster --check =="
    rm -rf cluster-logs
    if ! cargo run --release -p msc-bench --bin claims -- cluster --check; then
        echo "cluster smoke failed; daemon logs follow" >&2
        for f in cluster-logs/*.log; do
            [ -f "$f" ] || continue
            echo "---- $f ----" >&2
            cat "$f" >&2
        done
        exit 1
    fi
fi

if [ "$MODE" = "sweep-smoke" ]; then
    # The CLI half first (exercises --profiles dir loading, the engine
    # pool, and the sweep.* counters on a real terminal run), then the
    # gate. The gate measures the committed profiles/ files — not the
    # built-in matrix — so a doctored profile file fails here even
    # though it also fails tier-1's bit-equality test.
    echo "== sweep smoke: mscc sweep over every bundled profile =="
    ./target/release/mscc sweep examples/dispatch_heavy.mimdc --profiles profiles --metrics
    echo "== sweep regression gate: claims -- sweep --check =="
    cargo run --release -p msc-bench --bin claims -- sweep --check
fi

if [ "$MODE" = "fuzz-smoke" ]; then
    # Fixed seed: the stage is deterministic, a red build is always
    # reproducible locally with the same command. Mismatches exit
    # nonzero and drop minimized reproducers into fuzz-corpus/ (uploaded
    # as a CI artifact on failure).
    echo "== fuzz smoke: mscc fuzz, full oracle matrix, 200 cases =="
    rm -rf fuzz-corpus
    ./target/release/mscc fuzz --seed 1 --cases 200 --corpus fuzz-corpus
fi

echo "CI OK"
